//! Every rule is demonstrated by a violating fixture the lint must catch
//! and a passing fixture it must accept — so a regression in any rule
//! (pattern, scoping, or waiver parsing) fails `cargo test -p puffer-lint`.

use puffer_lint::check_file;

/// Fixtures are checked under a pseudo-path inside a result-affecting,
/// scoring-scoped crate so every rule's scope applies to them.
const RESULT_PATH: &str = "crates/core/src/controller.rs";

fn rules_fired(source: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> =
        check_file(RESULT_PATH, source).into_iter().map(|v| v.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

#[track_caller]
fn assert_catches(source: &str, rule: &str) {
    let fired = rules_fired(source);
    assert!(fired.contains(&rule), "expected rule `{rule}` to fire, got {fired:?}");
}

#[track_caller]
fn assert_clean(source: &str) {
    let v = check_file(RESULT_PATH, source);
    assert!(v.is_empty(), "expected no violations, got: {v:#?}");
}

#[test]
fn hash_order_fixtures() {
    assert_catches(include_str!("../fixtures/hash_order_bad.rs"), "hash-order");
    assert_clean(include_str!("../fixtures/hash_order_ok.rs"));
}

#[test]
fn wall_clock_fixtures() {
    assert_catches(include_str!("../fixtures/wall_clock_bad.rs"), "wall-clock");
    assert_clean(include_str!("../fixtures/wall_clock_ok.rs"));
}

#[test]
fn wrapping_fixtures() {
    assert_catches(include_str!("../fixtures/wrapping_bad.rs"), "wrapping");
    assert_clean(include_str!("../fixtures/wrapping_ok.rs"));
}

#[test]
fn unsafe_safety_fixtures() {
    assert_catches(include_str!("../fixtures/unsafe_safety_bad.rs"), "unsafe-safety");
    assert_clean(include_str!("../fixtures/unsafe_safety_ok.rs"));
}

#[test]
fn narrow_cast_fixtures() {
    assert_catches(include_str!("../fixtures/narrow_cast_bad.rs"), "narrow-cast");
    assert_clean(include_str!("../fixtures/narrow_cast_ok.rs"));
}

#[test]
fn panic_reach_fixtures() {
    assert_catches(include_str!("../fixtures/panic_reach_bad.rs"), "panic-reach");
    assert_clean(include_str!("../fixtures/panic_reach_ok.rs"));
}

#[test]
fn alloc_reach_fixtures() {
    assert_catches(include_str!("../fixtures/alloc_reach_bad.rs"), "alloc-reach");
    assert_clean(include_str!("../fixtures/alloc_reach_ok.rs"));
}

#[test]
fn atomic_ordering_fixtures() {
    assert_catches(include_str!("../fixtures/atomic_ordering_bad.rs"), "atomic-ordering");
    assert_clean(include_str!("../fixtures/atomic_ordering_ok.rs"));
}

#[test]
fn float_ord_fixtures() {
    assert_catches(include_str!("../fixtures/float_ord_bad.rs"), "float-ord");
    assert_clean(include_str!("../fixtures/float_ord_ok.rs"));
}

#[test]
fn violating_fixtures_fire_exactly_their_own_rule() {
    // Each bad fixture is a minimal reproduction: it must not trip unrelated
    // rules, or a fixture edit could silently shift which rule is covered.
    for (fixture, rule) in [
        (include_str!("../fixtures/hash_order_bad.rs"), "hash-order"),
        (include_str!("../fixtures/wall_clock_bad.rs"), "wall-clock"),
        (include_str!("../fixtures/wrapping_bad.rs"), "wrapping"),
        (include_str!("../fixtures/unsafe_safety_bad.rs"), "unsafe-safety"),
        (include_str!("../fixtures/narrow_cast_bad.rs"), "narrow-cast"),
        (include_str!("../fixtures/panic_reach_bad.rs"), "panic-reach"),
        (include_str!("../fixtures/alloc_reach_bad.rs"), "alloc-reach"),
        (include_str!("../fixtures/atomic_ordering_bad.rs"), "atomic-ordering"),
        (include_str!("../fixtures/float_ord_bad.rs"), "float-ord"),
    ] {
        assert_eq!(rules_fired(fixture), vec![rule]);
    }
}

/// The seeded regression from the issue: an `unwrap()` in a *different file*
/// reachable from an annotated `plan_with` must be reported with the full
/// cross-file root→sink call chain as its witness.
#[test]
fn injected_unwrap_reachable_from_plan_with_yields_cross_file_witness() {
    let corpus = puffer_lint::Corpus::from_sources(vec![
        (
            "crates/core/src/controller.rs".into(),
            "// lint-root: panic-free\n\
             pub fn plan_with(xs: &[f64]) -> f64 {\n\
                 predict_into(xs)\n\
             }\n"
            .into(),
        ),
        (
            "crates/core/src/ttp.rs".into(),
            "pub fn predict_into(xs: &[f64]) -> f64 {\n\
                 *xs.first().unwrap()\n\
             }\n"
            .into(),
        ),
    ]);
    let violations = corpus.check();
    let v = violations
        .iter()
        .find(|v| v.rule == "panic-reach")
        .expect("injected unwrap must be reported");
    assert_eq!(v.file, "crates/core/src/ttp.rs");
    assert_eq!(
        v.witness,
        [
            "plan_with (crates/core/src/controller.rs:2)",
            "predict_into (crates/core/src/ttp.rs:1)",
            "sink (crates/core/src/ttp.rs:2)",
        ],
        "witness must walk root → callee → sink across files"
    );
}

/// Reach rules must respect the crate dependency graph even in synthetic
/// corpora: with an explicit DepGraph, a same-named fn in a crate the caller
/// does not depend on is not a resolution candidate.
#[test]
fn reach_does_not_cross_into_non_dependency_crates() {
    let mut corpus = puffer_lint::Corpus::from_sources(vec![
        (
            "crates/abr/src/mpc.rs".into(),
            "// lint-root: panic-free\n\
             pub fn plan_with(xs: &[f64]) -> f64 {\n\
                 score(xs)\n\
             }\n"
            .into(),
        ),
        (
            "crates/bench/src/chart.rs".into(),
            "pub fn score(xs: &[f64]) -> f64 {\n\
                 xs.first().copied().unwrap()\n\
             }\n"
            .into(),
        ),
    ]);
    // abr depends on nothing here; bench is unreachable from it.
    corpus.deps.declare("abr", &[]);
    assert!(
        corpus.check().iter().all(|v| v.rule != "panic-reach"),
        "bench's unwrap is not reachable from abr under the dependency graph"
    );
}
