//! Every rule is demonstrated by a violating fixture the lint must catch
//! and a passing fixture it must accept — so a regression in any rule
//! (pattern, scoping, or waiver parsing) fails `cargo test -p puffer-lint`.

use puffer_lint::check_file;

/// Fixtures are checked under a pseudo-path inside a result-affecting,
/// scoring-scoped crate so every rule's scope applies to them.
const RESULT_PATH: &str = "crates/core/src/controller.rs";

fn rules_fired(source: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> =
        check_file(RESULT_PATH, source).into_iter().map(|v| v.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

#[track_caller]
fn assert_catches(source: &str, rule: &str) {
    let fired = rules_fired(source);
    assert!(fired.contains(&rule), "expected rule `{rule}` to fire, got {fired:?}");
}

#[track_caller]
fn assert_clean(source: &str) {
    let v = check_file(RESULT_PATH, source);
    assert!(v.is_empty(), "expected no violations, got: {v:#?}");
}

#[test]
fn hash_order_fixtures() {
    assert_catches(include_str!("../fixtures/hash_order_bad.rs"), "hash-order");
    assert_clean(include_str!("../fixtures/hash_order_ok.rs"));
}

#[test]
fn wall_clock_fixtures() {
    assert_catches(include_str!("../fixtures/wall_clock_bad.rs"), "wall-clock");
    assert_clean(include_str!("../fixtures/wall_clock_ok.rs"));
}

#[test]
fn wrapping_fixtures() {
    assert_catches(include_str!("../fixtures/wrapping_bad.rs"), "wrapping");
    assert_clean(include_str!("../fixtures/wrapping_ok.rs"));
}

#[test]
fn unsafe_safety_fixtures() {
    assert_catches(include_str!("../fixtures/unsafe_safety_bad.rs"), "unsafe-safety");
    assert_clean(include_str!("../fixtures/unsafe_safety_ok.rs"));
}

#[test]
fn narrow_cast_fixtures() {
    assert_catches(include_str!("../fixtures/narrow_cast_bad.rs"), "narrow-cast");
    assert_clean(include_str!("../fixtures/narrow_cast_ok.rs"));
}

#[test]
fn violating_fixtures_fire_exactly_their_own_rule() {
    // Each bad fixture is a minimal reproduction: it must not trip unrelated
    // rules, or a fixture edit could silently shift which rule is covered.
    for (fixture, rule) in [
        (include_str!("../fixtures/hash_order_bad.rs"), "hash-order"),
        (include_str!("../fixtures/wall_clock_bad.rs"), "wall-clock"),
        (include_str!("../fixtures/wrapping_bad.rs"), "wrapping"),
        (include_str!("../fixtures/unsafe_safety_bad.rs"), "unsafe-safety"),
        (include_str!("../fixtures/narrow_cast_bad.rs"), "narrow-cast"),
    ] {
        assert_eq!(rules_fired(fixture), vec![rule]);
    }
}
