//! Self-tests of the analysis pipeline against the real workspace: the
//! symbol table must see every `fn` the lexer sees, and the `lint-root:`
//! annotations must cover exactly the functions the dynamic allocation gate
//! (`tests/alloc_gate.rs`) asserts — so the static rules and the runtime
//! measurement guard the same surface.

use puffer_lint::symbols::SymbolTable;
use puffer_lint::tokens::Kind;
use puffer_lint::Corpus;

/// Every `fn <ident>` token pair in the scanned workspace must produce a
/// symbol at that exact file and line.  A gap here means the scope walker
/// skipped a declaration shape, and with it every call edge into that fn.
#[test]
fn symbol_table_covers_every_fn_token() {
    let corpus = Corpus::load(&puffer_lint::workspace_root());
    let symbols = SymbolTable::build(&corpus);
    let mut checked = 0usize;
    for (file_idx, file) in corpus.files.iter().enumerate() {
        for pair in file.tokens.windows(2) {
            let (kw, name) = (&pair[0], &pair[1]);
            if kw.text != "fn" || name.kind != Kind::Ident {
                continue;
            }
            checked += 1;
            assert!(
                symbols
                    .fns
                    .iter()
                    .any(|f| f.file == file_idx && f.name == name.text && f.decl_line == kw.line),
                "no symbol for `fn {}` at {}:{}",
                name.text,
                file.relpath,
                kw.line + 1
            );
        }
    }
    assert!(checked > 100, "workspace scan saw only {checked} fn declarations");
}

/// The functions `tests/alloc_gate.rs` asserts allocation-free in steady
/// state, by (self type, name).  Update alongside the gate.
const GATED: &[(Option<&str>, &str)] = &[
    (Some("StochasticMpc"), "plan_with"),
    (Some("Mpc"), "plan_with"),
    (Some("Ttp"), "predict_time_distributions_into"),
    (Some("Ttp"), "predict_time_distributions_batched_into"),
    (Some("ArchiveWriter"), "push_sent"),
    (Some("ArchiveWriter"), "push_acked"),
    (Some("ArchiveWriter"), "push_buffer"),
    (Some("Matrix"), "matmul_into_with"),
    (None, "train_one_net"),
];

#[test]
fn root_annotations_cover_every_alloc_gate_function() {
    let corpus = Corpus::load(&puffer_lint::workspace_root());
    let symbols = SymbolTable::build(&corpus);
    for &(self_type, name) in GATED {
        assert!(
            symbols
                .fns
                .iter()
                .any(|f| f.name == name && f.self_type.as_deref() == self_type && f.alloc_root),
            "`{}{name}` is asserted by tests/alloc_gate.rs but has no \
             `lint-root: alloc-free` annotation",
            self_type.map(|t| format!("{t}::")).unwrap_or_default(),
        );
    }
}
