//! The enforcement point: `cargo test --workspace` fails if any repo
//! invariant is violated, with the same findings `cargo run -p puffer-lint`
//! prints in CI.

#[test]
fn workspace_is_clean() {
    let root = puffer_lint::workspace_root();
    let violations = puffer_lint::scan_workspace(&root);
    assert!(
        violations.is_empty(),
        "puffer-lint found {} violation(s):\n{}",
        violations.len(),
        violations.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn workspace_scan_covers_the_source_tree() {
    // Guard against the scanner silently walking nothing (wrong root, bad
    // skip list): the hot-path crates must be among the scanned files.
    let root = puffer_lint::workspace_root();
    for probe in ["crates/core/src/controller.rs", "crates/nn/src/matrix.rs", "src/bin/puffer.rs"] {
        assert!(root.join(probe).exists(), "scan probe missing: {probe}");
    }
}
