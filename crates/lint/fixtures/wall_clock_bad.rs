// Violating fixture: a wall-clock read in a sim crate.  Stamping telemetry
// with real time makes two replays of the same seed produce different rows.
pub fn stamp() -> std::time::Duration {
    let start = std::time::Instant::now();
    start.elapsed()
}

pub fn epoch_seconds() -> u64 {
    use std::time::SystemTime;
    SystemTime::now().duration_since(SystemTime::UNIX_EPOCH).unwrap().as_secs()
}
