//! Seeded regression for `panic-reach`: an `unwrap()` two calls below an
//! annotated planner root must be reported with a root→sink witness chain.

// lint-root: panic-free
pub fn plan_with(xs: &[f64]) -> f64 {
    helper(xs)
}

fn helper(xs: &[f64]) -> f64 {
    lookup(xs)
}

fn lookup(xs: &[f64]) -> f64 {
    *xs.first().unwrap()
}
