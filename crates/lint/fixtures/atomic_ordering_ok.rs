//! Passing counterpart for `atomic-ordering`: the same store with the
//! ordering choice justified.

use std::sync::atomic::{AtomicBool, Ordering};

static FLAG: AtomicBool = AtomicBool::new(false);

pub fn publish() {
    // lint: atomic-ordering — standalone flag; no other data is published with it
    FLAG.store(true, Ordering::Relaxed);
}
