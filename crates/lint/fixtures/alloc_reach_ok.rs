//! Passing counterpart for `alloc-reach`: the steady-state shape — write
//! into a caller-owned slice instead of growing a vector.

// lint-root: alloc-free
pub fn plan_with(out: &mut [f64]) {
    fill(out);
}

fn fill(out: &mut [f64]) {
    for o in out.iter_mut() {
        *o = 1.0;
    }
}
