// Violating fixture: an unwaived HashMap in a result-affecting crate.  A
// per-chunk map like this, iterated into telemetry, would reorder rows
// between runs (RandomState) and change every downstream fingerprint.
use std::collections::HashMap;

pub fn chunk_sizes_csv(sizes: &HashMap<u64, f64>) -> String {
    let mut out = String::new();
    for (ts, size) in sizes {
        out.push_str(&format!("{ts},{size}\n"));
    }
    out
}
