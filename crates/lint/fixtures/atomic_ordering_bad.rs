//! Violating fixture for `atomic-ordering`: a memory ordering with no
//! justification comment.

use std::sync::atomic::{AtomicBool, Ordering};

static FLAG: AtomicBool = AtomicBool::new(false);

pub fn publish() {
    FLAG.store(true, Ordering::Relaxed);
}
