// Passing fixture: time is simulated and threaded through explicitly; the
// only mention of the real clock is inside a string, which the scanner
// blanks, plus a waived diagnostic that never reaches results.
pub fn stamp(sim_time: f64) -> String {
    format!("sim clock (not Instant::now): {sim_time}")
}

pub fn debug_wall_seconds() -> u64 {
    // lint: wall-clock — operator-facing log line only, never written to telemetry
    let started = std::time::SystemTime::now();
    started.elapsed().map(|d| d.as_secs()).unwrap_or(0)
}
