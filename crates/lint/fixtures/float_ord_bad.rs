//! Violating fixture for `float-ord`: `partial_cmp` in a result-affecting
//! crate must route through a total comparison instead.

pub fn pick(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap_or(0)
}
