// Passing fixture: wrapping ops with a seed-mix waiver — deriving a child
// RNG stream, where modular arithmetic is exactly the intent.
pub fn child_seed(parent: u64, index: u64) -> u64 {
    // lint: seed-mix — splitmix-style stream derivation for worker RNGs
    let z = parent.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(index + 1));
    z ^ (z >> 30)
}

pub fn total_bytes(chunks: &[u64]) -> u64 {
    chunks.iter().copied().sum()
}
