//! Passing counterpart for `panic-reach`: the same call shape, with the one
//! partial operation waived at its site with a reason.

// lint-root: panic-free
pub fn plan_with(xs: &[f64]) -> f64 {
    helper(xs)
}

fn helper(xs: &[f64]) -> f64 {
    // lint: panic-free — entry contract: callers never pass an empty plan
    let first = xs[0];
    first.max(0.0)
}
