//! Violating fixture for `alloc-reach`: a `push` one call below an annotated
//! allocation-free root.

// lint-root: alloc-free
pub fn plan_with(out: &mut Vec<f64>) {
    fill(out);
}

fn fill(out: &mut Vec<f64>) {
    out.push(1.0);
}
