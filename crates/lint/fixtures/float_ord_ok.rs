//! Passing counterpart for `float-ord`: `total_cmp` gives NaN and signed
//! zero a fixed place in the order, so results cannot depend on them.

pub fn rank(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}
