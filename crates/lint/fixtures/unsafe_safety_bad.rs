// Violating fixture: an unsafe block with no SAFETY comment.  The reader
// has no way to audit why the unchecked index cannot go out of bounds.
pub fn first(v: &[f32]) -> f32 {
    unsafe { *v.get_unchecked(0) }
}
