// Violating fixture: wrapping arithmetic on a quantity that is not a seed.
// A byte counter that overflows u64 is a logic error; wrapping_add would
// silently wrap it into a tiny, wrong total.
pub fn total_bytes(chunks: &[u64]) -> u64 {
    let mut total = 0u64;
    for &c in chunks {
        total = total.wrapping_add(c);
    }
    total
}
