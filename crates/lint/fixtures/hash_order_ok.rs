// Passing fixture: ordered map for anything that reaches output, and a
// reasoned waiver where a hash set is genuinely order-insensitive.
use std::collections::BTreeMap;

pub fn chunk_sizes_csv(sizes: &BTreeMap<u64, f64>) -> String {
    let mut out = String::new();
    for (ts, size) in sizes {
        out.push_str(&format!("{ts},{size}\n"));
    }
    out
}

pub fn all_distinct(ids: &[u64]) -> bool {
    // lint: order-insensitive — the set is only probed for cardinality
    let set: std::collections::HashSet<u64> = ids.iter().copied().collect();
    set.len() == ids.len()
}
