// Violating fixture: an f64 QoE score narrowed through f32 before the
// comparison — near-ties that are distinct in f64 can collapse in f32 and
// flip the argmax (the PR 1 controller bug).
pub fn best_rung(scores: &[f64]) -> usize {
    let mut best = (0usize, f32::NEG_INFINITY);
    for (i, &s) in scores.iter().enumerate() {
        let s32 = s as f32;
        if s32 > best.1 {
            best = (i, s32);
        }
    }
    best.0
}
