// Passing fixture: scores stay in f64 end to end; the one narrowing feeds
// a display label, not a comparison, and says so.
pub fn best_rung(scores: &[f64]) -> usize {
    let mut best = (0usize, f64::NEG_INFINITY);
    for (i, &s) in scores.iter().enumerate() {
        if s > best.1 {
            best = (i, s);
        }
    }
    best.0
}

pub fn label(score: f64) -> f32 {
    // lint: narrowing-ok — UI label precision, never compared or summed
    score as f32
}
