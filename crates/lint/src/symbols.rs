//! Workspace symbol table: every `fn` item the lexer can see.
//!
//! A single forward pass over each file's token stream tracks brace-delimited
//! scopes (`impl`/`trait`/`mod`/plain blocks) and records one [`FnSym`] per
//! `fn` item: its name, the self type of the enclosing `impl`/`trait` (if
//! any), its crate and module path, whether it is test-only code, the token
//! span of its body, and any `// lint-root:` annotations in the attribute
//! block introducing it.  The call graph and the reachability rules are built
//! on top of this table.
//!
//! The walker is lexical and conservative by design (the build environment
//! has no `syn`): it never needs to type-check, only to find item boundaries,
//! and the `symbols_cover_workspace` corpus self-test pins that it finds
//! every `fn <ident>` the tokenizer sees.

use crate::tokens::{Kind, Tok};
use crate::{crate_of, Corpus, Line};
use std::collections::BTreeSet;

/// Reachability-root annotations a function can carry
/// (`// lint-root: panic-free` / `// lint-root: alloc-free`, comma-separable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootKind {
    PanicFree,
    AllocFree,
}

impl RootKind {
    pub fn key(self) -> &'static str {
        match self {
            RootKind::PanicFree => "panic-free",
            RootKind::AllocFree => "alloc-free",
        }
    }
}

/// One `fn` item found in the workspace.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// Bare function name (`plan_with`, `argmax`, ...).
    pub name: String,
    /// Self type of the enclosing `impl`/`trait` block, if any.
    pub self_type: Option<String>,
    /// Index into the corpus' file list.
    pub file: usize,
    /// 0-based line of the `fn` keyword.
    pub decl_line: usize,
    /// Token index of the `fn` keyword (start of the item, for skip ranges).
    pub intro_tok: usize,
    /// Token span `[open brace, close brace]` of the body; `None` for
    /// bodyless trait declarations.
    pub body: Option<(usize, usize)>,
    /// Declared in `#[cfg(test)]`/`#[test]` code, an integration-test file,
    /// or an example — excluded from call-graph resolution and rule scans.
    pub is_test: bool,
    /// Annotated `// lint-root: panic-free`.
    pub panic_root: bool,
    /// Annotated `// lint-root: alloc-free`.
    pub alloc_root: bool,
    /// Module path for display (`core::controller`, `nn::matrix::tests`).
    pub module: String,
}

impl FnSym {
    pub fn is_root(&self, kind: RootKind) -> bool {
        match kind {
            RootKind::PanicFree => self.panic_root,
            RootKind::AllocFree => self.alloc_root,
        }
    }

    /// Human-readable qualified name (`Mpc::plan_with`, `argmax`).
    pub fn qualified(&self) -> String {
        match &self.self_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The workspace symbol table.
#[derive(Debug, Default)]
pub struct SymbolTable {
    pub fns: Vec<FnSym>,
    /// `(file, line)` positions of `lint-root:` comments claimed by some fn —
    /// the stale-annotation rule flags any `lint-root:` line not in this set.
    pub claimed_root_lines: BTreeSet<(usize, usize)>,
}

/// Lines of the contiguous comment/attribute block introducing an item:
/// the declaration line itself, then upward over comment-only, attribute,
/// and blank lines.  This is the same scan the `unsafe-safety` rule uses,
/// and it is where `lint-root:` annotations and fn-level waivers live.
pub fn decl_block_lines(lines: &[Line], decl_line: usize) -> Vec<usize> {
    let mut out = vec![decl_line];
    let mut j = decl_line;
    while j > 0 {
        j -= 1;
        let code = lines[j].code.trim();
        if code.is_empty() || code.starts_with('#') {
            out.push(j);
        } else {
            break;
        }
    }
    out
}

/// Parse the `lint-root:` kinds named in one comment, with any unknown kind
/// text returned for diagnostics.
pub fn parse_root_kinds(comment: &str) -> Option<(Vec<RootKind>, Vec<String>)> {
    let pos = comment.find("lint-root:")?;
    let rest = &comment[pos + "lint-root:".len()..];
    let mut kinds = Vec::new();
    let mut unknown = Vec::new();
    for part in rest.split(',') {
        let part = part.trim().trim_matches(['.', ';']);
        if part.is_empty() {
            continue;
        }
        match part {
            "panic-free" => kinds.push(RootKind::PanicFree),
            "alloc-free" => kinds.push(RootKind::AllocFree),
            other => unknown.push(other.to_string()),
        }
    }
    Some((kinds, unknown))
}

pub(crate) fn is_test_path(relpath: &str) -> bool {
    for marker in ["tests/", "examples/", "benches/"] {
        if relpath.starts_with(marker) || relpath.contains(&format!("/{marker}")) {
            return true;
        }
    }
    false
}

/// Module path derived from the file path (`crates/nn/src/matrix.rs` →
/// `nn::matrix`), extended by inline `mod` blocks during the walk.
fn file_module(relpath: &str) -> String {
    let krate = crate_of(relpath).unwrap_or("?");
    let stem = relpath.rsplit('/').next().and_then(|f| f.strip_suffix(".rs")).unwrap_or_default();
    if stem == "lib" || stem == "main" || stem == "mod" {
        krate.to_string()
    } else {
        format!("{krate}::{stem}")
    }
}

#[derive(Debug, Clone)]
enum ScopeKind {
    Block,
    Impl(Option<String>),
    Mod { test: bool },
    Trait(String),
    Fn(usize),
}

/// Items may only start where a previous item or block ended; this keeps
/// `-> impl Iterator` (a return type) from being read as an `impl` item.
fn item_position(prev: Option<&Tok>) -> bool {
    match prev {
        None => true,
        Some(t) => matches!(t.text.as_str(), "{" | "}" | ";" | "]" | ")" | "unsafe" | "pub"),
    }
}

/// Parse the self type out of an `impl` header token slice
/// (everything between `impl` and the body `{`).
fn impl_self_type(header: &[Tok]) -> Option<String> {
    // `impl Trait for Type` names the type after the *last* `for`;
    // a plain `impl Type` names it directly.
    let seg = match header.iter().rposition(|t| t.text == "for") {
        Some(p) => &header[p + 1..],
        None => header,
    };
    let mut i = 0usize;
    // Skip a leading generic parameter list `<...>`.
    if seg.first().is_some_and(|t| t.text == "<") {
        let mut depth = 0i32;
        while i < seg.len() {
            match seg[i].text.as_str() {
                "<" => depth += 1,
                ">" => depth -= 1,
                _ => {}
            }
            i += 1;
            if depth == 0 {
                break;
            }
        }
    }
    // Skip reference/dyn noise, then take the last segment of the type path.
    let mut last = None;
    while i < seg.len() {
        let t = &seg[i];
        match (t.kind, t.text.as_str()) {
            (Kind::Punct, "&")
            | (Kind::Ident, "mut")
            | (Kind::Ident, "dyn")
            | (Kind::Lifetime, _) => {
                i += 1;
            }
            (Kind::Ident, _) => {
                last = Some(t.text.clone());
                if seg.get(i + 1).is_some_and(|n| n.text == "::") {
                    i += 2;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    last
}

impl SymbolTable {
    /// Walk every file of the corpus and collect its `fn` items.
    pub fn build(corpus: &Corpus) -> SymbolTable {
        let mut table = SymbolTable::default();
        for (file_idx, file) in corpus.files.iter().enumerate() {
            if crate_of(&file.relpath).is_none() {
                continue;
            }
            table.walk_file(corpus, file_idx);
        }
        table
    }

    /// All non-test candidate definitions for a bare callee name.
    pub fn candidates_named(&self, name: &str) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.is_test && f.name == name)
            .map(|(i, _)| i)
            .collect()
    }

    fn walk_file(&mut self, corpus: &Corpus, file_idx: usize) {
        let file = &corpus.files[file_idx];
        let toks = &file.tokens;
        let lines = &file.lines;
        let file_test = is_test_path(&file.relpath);
        let base_module = file_module(&file.relpath);

        let mut scopes: Vec<ScopeKind> = Vec::new();
        let mut pending: Option<ScopeKind> = None;
        let mut i = 0usize;
        while i < toks.len() {
            let t = &toks[i];
            let prev = if i == 0 { None } else { Some(&toks[i - 1]) };
            match (t.kind, t.text.as_str()) {
                (Kind::Ident, "impl") if item_position(prev) => {
                    if let Some(open) = toks[i..].iter().position(|t| t.text == "{") {
                        pending = Some(ScopeKind::Impl(impl_self_type(&toks[i + 1..i + open])));
                        i += open;
                    } else {
                        i += 1;
                    }
                    continue;
                }
                (Kind::Ident, "mod")
                    if item_position(prev)
                        && toks.get(i + 1).is_some_and(|n| n.kind == Kind::Ident) =>
                {
                    if let Some(open) =
                        toks[i..].iter().position(|t| t.text == "{" || t.text == ";")
                    {
                        if toks[i + open].text == "{" {
                            let in_test = self.scope_is_test(&scopes, file_test);
                            let test = in_test || block_has_cfg_test(lines, t.line);
                            pending = Some(ScopeKind::Mod { test });
                            i += open;
                        } else {
                            i += open + 1; // `mod name;` — file module, no scope.
                        }
                        continue;
                    }
                    i += 1;
                    continue;
                }
                (Kind::Ident, "trait")
                    if item_position(prev)
                        && toks.get(i + 1).is_some_and(|n| n.kind == Kind::Ident) =>
                {
                    if let Some(open) =
                        toks[i..].iter().position(|t| t.text == "{" || t.text == ";")
                    {
                        if toks[i + open].text == "{" {
                            pending = Some(ScopeKind::Trait(toks[i + 1].text.clone()));
                            i += open;
                            continue;
                        }
                        i += open + 1;
                        continue;
                    }
                    i += 1;
                    continue;
                }
                (Kind::Ident, "fn") if toks.get(i + 1).is_some_and(|n| n.kind == Kind::Ident) => {
                    let name = toks[i + 1].text.clone();
                    let decl_line = t.line;
                    let block = decl_block_lines(lines, decl_line);
                    let is_test = file_test
                        || self.scope_is_test(&scopes, file_test)
                        || block.iter().any(|&l| lines[l].code.contains("#[test]"));
                    let mut panic_root = false;
                    let mut alloc_root = false;
                    for &l in &block {
                        if let Some((kinds, _)) = parse_root_kinds(&lines[l].comment) {
                            self.claimed_root_lines.insert((file_idx, l));
                            panic_root |= kinds.contains(&RootKind::PanicFree);
                            alloc_root |= kinds.contains(&RootKind::AllocFree);
                        }
                    }
                    let self_type = scopes.iter().rev().find_map(|s| match s {
                        ScopeKind::Impl(t) => Some(t.clone()),
                        ScopeKind::Trait(n) => Some(Some(n.clone())),
                        _ => None,
                    });
                    let module = self.module_path(&base_module, &scopes);
                    let idx = self.fns.len();
                    self.fns.push(FnSym {
                        name,
                        self_type: self_type.flatten(),
                        file: file_idx,
                        decl_line,
                        intro_tok: i,
                        body: None,
                        is_test,
                        panic_root,
                        alloc_root,
                        module,
                    });
                    // Scan the signature for the body `{` (or `;` for a
                    // bodyless trait declaration).  Braces cannot appear in a
                    // signature outside delimiters, so depth counting is safe.
                    let mut j = i + 2;
                    let mut paren = 0i32;
                    let mut bracket = 0i32;
                    while j < toks.len() {
                        match toks[j].text.as_str() {
                            "(" => paren += 1,
                            ")" => paren -= 1,
                            "[" => bracket += 1,
                            "]" => bracket -= 1,
                            "{" if paren == 0 && bracket == 0 => {
                                pending = Some(ScopeKind::Fn(idx));
                                self.fns[idx].body = Some((j, j)); // end fixed at `}`.
                                break;
                            }
                            ";" if paren == 0 && bracket == 0 => {
                                j += 1;
                                break;
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    i = j;
                    continue;
                }
                (Kind::Punct, "{") => {
                    scopes.push(pending.take().unwrap_or(ScopeKind::Block));
                    i += 1;
                    continue;
                }
                (Kind::Punct, "}") => {
                    if let Some(ScopeKind::Fn(idx)) = scopes.pop() {
                        if let Some((start, _)) = self.fns[idx].body {
                            self.fns[idx].body = Some((start, i));
                        }
                    }
                    i += 1;
                    continue;
                }
                _ => {
                    i += 1;
                }
            }
        }
    }

    fn scope_is_test(&self, scopes: &[ScopeKind], file_test: bool) -> bool {
        file_test || scopes.iter().any(|s| matches!(s, ScopeKind::Mod { test: true }))
    }

    fn module_path(&self, base: &str, scopes: &[ScopeKind]) -> String {
        // Inline mod names are not retained per-scope (only their test flag);
        // mark nested-module fns with the test suffix for readability.
        if scopes.iter().any(|s| matches!(s, ScopeKind::Mod { test: true })) {
            format!("{base}::tests")
        } else {
            base.to_string()
        }
    }
}

/// Does the attribute block above `decl_line` gate the item behind
/// `#[cfg(test)]`?
fn block_has_cfg_test(lines: &[Line], decl_line: usize) -> bool {
    decl_block_lines(lines, decl_line).iter().any(|&l| lines[l].code.contains("cfg(test"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(src: &str) -> SymbolTable {
        SymbolTable::build(&Corpus::from_sources(vec![(
            "crates/core/src/controller.rs".into(),
            src.into(),
        )]))
    }

    #[test]
    fn finds_free_and_impl_fns() {
        let t = table(
            "fn free() {}\n\
             struct S;\n\
             impl S { pub fn method(&self) -> usize { 1 } }\n\
             impl std::fmt::Display for S { fn fmt(&self) {} }\n",
        );
        let names: Vec<String> = t.fns.iter().map(FnSym::qualified).collect();
        assert_eq!(names, ["free", "S::method", "S::fmt"]);
    }

    #[test]
    fn generic_impl_headers_resolve_self_type() {
        let t = table(
            "impl<T: Clone> Wrapper<T> { fn get(&self) {} }\n\
             impl<'a, R: Rng + ?Sized> Trait for &'a mut Driver<R> { fn go(&self) {} }\n",
        );
        assert_eq!(t.fns[0].qualified(), "Wrapper::get");
        assert_eq!(t.fns[1].qualified(), "Driver::go");
    }

    #[test]
    fn return_position_impl_is_not_an_item() {
        let t = table("fn f() -> impl Iterator<Item = u8> { [1u8].into_iter() }\nfn g() {}\n");
        assert_eq!(t.fns.len(), 2);
        assert!(t.fns.iter().all(|f| f.self_type.is_none()));
    }

    #[test]
    fn cfg_test_mod_and_test_attr_mark_fns() {
        let t = table(
            "fn prod() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn helper() {}\n\
                 #[test]\n\
                 fn case() {}\n\
             }\n",
        );
        let flags: Vec<(String, bool)> =
            t.fns.iter().map(|f| (f.name.clone(), f.is_test)).collect();
        assert_eq!(flags, [("prod".into(), false), ("helper".into(), true), ("case".into(), true)]);
    }

    #[test]
    fn root_annotations_attach_through_the_attr_block() {
        let t = table(
            "// lint-root: panic-free, alloc-free\n\
             #[inline]\n\
             pub fn hot() {}\n\
             fn cold() {}\n",
        );
        assert!(t.fns[0].panic_root && t.fns[0].alloc_root);
        assert!(!t.fns[1].panic_root && !t.fns[1].alloc_root);
        assert!(t.claimed_root_lines.contains(&(0, 0)));
    }

    #[test]
    fn bodyless_trait_fns_have_no_span() {
        let t = table("trait Opt { fn step(&mut self); fn lr(&self) -> f32 { 0.1 } }\n");
        assert_eq!(t.fns[0].qualified(), "Opt::step");
        assert!(t.fns[0].body.is_none());
        assert!(t.fns[1].body.is_some());
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let t = table("fn f(cb: fn(usize) -> u8, arr: [f64; 4]) { cb(arr.len()); }\n");
        assert_eq!(t.fns.len(), 1);
        assert!(t.fns[0].body.is_some());
    }
}
