//! Repo-invariant static analysis for the Puffer reproduction.
//!
//! The experiment's conclusions rest on *bit-exact* determinism: randomized
//! assignment must replay identically, nightly retrains must be bit-identical
//! at any thread count, and the pinned hot paths must stay allocation-free.
//! Those invariants are easy to break silently — iterate a `HashMap` into a
//! fingerprint, call `Instant::now()` in a sim crate, narrow an `f64` score
//! through `f32` — so this crate enforces them mechanically, at analysis
//! time, instead of hoping a reviewer notices.
//!
//! The build environment is offline (no `syn`), so the scanner is a small
//! comment/string-aware lexical pass: source is split into per-line *code*
//! and *comment* channels (string literals blanked, comments routed aside),
//! and each rule matches tokens in the code channel only.  That makes the
//! rules deliberately coarse — they flag *mentions*, not data flow — and the
//! escape hatch is an explicit, reasoned waiver comment that a reviewer can
//! audit:
//!
//! ```text
//! // lint: order-insensitive — set is only used for a cardinality check
//! let mut seen = std::collections::HashSet::new();
//! ```
//!
//! A waiver lives on the flagged line or the line directly above it, names
//! the rule key, and must carry a non-empty reason.  A keyed waiver with no
//! reason is itself a violation.
//!
//! ## Rules
//!
//! | rule id         | invariant                                                        | waiver key          |
//! |-----------------|------------------------------------------------------------------|---------------------|
//! | `hash-order`    | no `HashMap`/`HashSet` in result-affecting crates                | `order-insensitive` |
//! | `wall-clock`    | no `Instant::now`/`SystemTime` outside `shims`/`bench`           | `wall-clock`        |
//! | `wrapping`      | wrapping arithmetic only in seed/RNG-mixing code                 | `seed-mix`          |
//! | `unsafe-safety` | every `unsafe` is preceded by a `// SAFETY:` comment             | (none — document)   |
//! | `narrow-cast`   | no `as f32` narrowing in scoring/QoE paths                       | `narrowing-ok`      |
//!
//! Run as `cargo run -p puffer-lint` (CI) or via the `workspace_is_clean`
//! test, which makes `cargo test --workspace` itself the enforcement point.
//! The full invariant catalogue lives in `docs/INVARIANTS.md`.

use std::path::{Path, PathBuf};

/// One line of source, split into its code and comment channels.
///
/// String and char literals are blanked out of `code` (replaced by a quoted
/// space) so rule patterns never match inside literals; comment text —
/// line, block, and doc comments — is routed to `comment` so waivers and
/// `SAFETY:` markers can be found without false-positive code matches.
#[derive(Debug, Clone, Default)]
pub struct Line {
    pub code: String,
    pub comment: String,
}

/// A single rule violation at a file/line position.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule identifier (`hash-order`, `wall-clock`, ...).
    pub rule: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.msg)
    }
}

/// Split Rust source into per-line code/comment channels.
///
/// Handles line comments, (nested) block comments, string literals with
/// escapes, raw strings (`r"…"`, `r#"…"#`, `br"…"`), byte strings, char
/// literals, and lifetimes (`'a` is code, `'x'` is a blanked literal).
/// The state machine is lexical, not a full lexer: its job is only to keep
/// rule patterns from matching inside literals or comments, and to expose
/// comment text for waiver parsing.
pub fn split_source(source: &str) -> Vec<Line> {
    #[derive(PartialEq, Clone, Copy)]
    enum St {
        Code,
        LineComment,
        Block(u32),
        Str,
        RawStr(u32),
    }
    let b: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut cur = Line::default();
    let mut st = St::Code;
    let mut i = 0usize;
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            if st == St::LineComment {
                st = St::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                if c == '/' && b.get(i + 1) == Some(&'/') {
                    st = St::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && b.get(i + 1) == Some(&'*') {
                    st = St::Block(1);
                    cur.code.push(' ');
                    i += 2;
                    continue;
                }
                // Raw / byte string prefixes: r"  r#"  br"  b"  (only when
                // the prefix letter is not the tail of a longer identifier).
                if (c == 'r' || c == 'b') && (i == 0 || !is_ident(b[i - 1])) {
                    let mut j = i + 1;
                    if c == 'b' && b.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    let rawish = c == 'r' || b.get(i + 1) == Some(&'r');
                    if b.get(j) == Some(&'"') && (rawish || hashes == 0) {
                        if rawish {
                            st = St::RawStr(hashes);
                        } else {
                            st = St::Str;
                        }
                        cur.code.push('"');
                        i = j + 1;
                        continue;
                    }
                }
                if c == '"' {
                    st = St::Str;
                    cur.code.push('"');
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    // Char literal vs lifetime: '\x' escapes and 'c' literals
                    // close with a quote; lifetimes ('a, 'static) do not.
                    if b.get(i + 1) == Some(&'\\') {
                        let mut j = i + 2;
                        while j < b.len() && b[j] != '\'' && b[j] != '\n' {
                            j += 1;
                        }
                        cur.code.push_str("' '");
                        i = (j + 1).min(b.len());
                        continue;
                    }
                    if b.get(i + 2) == Some(&'\'') {
                        cur.code.push_str("' '");
                        i += 3;
                        continue;
                    }
                    cur.code.push('\'');
                    i += 1;
                    continue;
                }
                cur.code.push(c);
                i += 1;
            }
            St::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            St::Block(depth) => {
                if c == '*' && b.get(i + 1) == Some(&'/') {
                    st = if depth == 1 { St::Code } else { St::Block(depth - 1) };
                    i += 2;
                } else if c == '/' && b.get(i + 1) == Some(&'*') {
                    st = St::Block(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    i += 2; // skip the escaped char (may be a quote)
                } else if c == '"' {
                    st = St::Code;
                    cur.code.push_str(" \"");
                    i += 1;
                } else {
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut n = 0u32;
                    while n < hashes && b.get(j) == Some(&'#') {
                        n += 1;
                        j += 1;
                    }
                    if n == hashes {
                        st = St::Code;
                        cur.code.push_str(" \"");
                        i = j;
                        continue;
                    }
                }
                i += 1;
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    lines
}

/// Does `code` contain `needle` as a whole token (neither neighbour is an
/// identifier character)?
fn has_token(code: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !code[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok =
            !code[after..].chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// Outcome of looking for a waiver near a flagged line.
enum Waiver {
    /// No waiver comment with this key.
    None,
    /// Waiver present with a non-empty reason.
    Granted,
    /// Waiver key present but no reason given.
    MissingReason,
}

/// Look for `lint: <key> <reason>` in the comment channel of the flagged
/// line or the line directly above it.
fn waiver(lines: &[Line], idx: usize, key: &str) -> Waiver {
    let mut found_empty = false;
    for j in [idx, idx.wrapping_sub(1)] {
        let Some(line) = lines.get(j) else { continue };
        let Some(pos) = line.comment.find("lint:") else { continue };
        let rest = line.comment[pos + "lint:".len()..].trim_start();
        if let Some(after_key) = rest.strip_prefix(key) {
            let reason = after_key.trim_start_matches([' ', '\u{2014}', '-', ':', '\u{2013}']);
            if reason.trim().is_empty() {
                found_empty = true;
            } else {
                return Waiver::Granted;
            }
        }
    }
    if found_empty {
        Waiver::MissingReason
    } else {
        Waiver::None
    }
}

/// Crates whose output reaches results, telemetry, fingerprints, or model
/// weights — where hash-iteration order or wrapping arithmetic can corrupt
/// the experiment.  `root` is the top-level `puffer-repro` package (binaries,
/// integration tests, examples), which drives the RCT end to end.
const RESULT_CRATES: &[&str] =
    &["core", "abr", "platform", "nn", "stats", "trace", "media", "net", "root"];

/// Files that *are* the seed/RNG-mixing path: wrapping arithmetic is the
/// point there (splitmix-style avalanche), so no waiver is required.
const SEED_MIX_FILES: &[&str] = &["crates/platform/src/experiment.rs"];

/// Scoring/QoE paths where an `f64 → f32` narrowing can flip near-ties (the
/// PR 1 controller argmax bug): QoE arithmetic, SSIM, the planners, and the
/// statistics crate that turns telemetry into the paper's figures.
const SCORING_PATHS: &[&str] = &[
    "crates/media/src/qoe.rs",
    "crates/media/src/ssim.rs",
    "crates/core/src/controller.rs",
    "crates/abr/src/mpc.rs",
    "crates/abr/src/bola.rs",
    "crates/abr/src/bba.rs",
    "crates/stats/src/",
];

/// Which crate a workspace-relative path belongs to (`root` for the
/// top-level package's `src/`, `tests/`, and `examples/`).
fn crate_of(relpath: &str) -> Option<&str> {
    if let Some(rest) = relpath.strip_prefix("crates/") {
        return rest.split('/').next();
    }
    if relpath.starts_with("src/")
        || relpath.starts_with("tests/")
        || relpath.starts_with("examples/")
    {
        return Some("root");
    }
    None
}

fn push(violations: &mut Vec<Violation>, file: &str, line: usize, rule: &'static str, msg: String) {
    violations.push(Violation { file: file.to_string(), line: line + 1, rule, msg });
}

/// Run every rule over one file.  `relpath` must be workspace-relative with
/// `/` separators — rule scoping keys off it.
pub fn check_file(relpath: &str, source: &str) -> Vec<Violation> {
    let lines = split_source(source);
    let mut out = Vec::new();
    let Some(krate) = crate_of(relpath) else { return out };
    let result_crate = RESULT_CRATES.contains(&krate);
    let scoring = SCORING_PATHS.iter().any(|p| relpath.starts_with(p));
    let seed_mix_file = SEED_MIX_FILES.contains(&relpath);

    for (idx, line) in lines.iter().enumerate() {
        let code = line.code.as_str();

        // Rule: hash-order.  HashMap/HashSet iteration order varies per
        // process (RandomState), so any use in a result-affecting crate must
        // either be replaced by BTreeMap/sorted iteration or carry a
        // reviewed order-insensitivity waiver.
        if result_crate {
            for ty in ["HashMap", "HashSet"] {
                if has_token(code, ty) {
                    match waiver(&lines, idx, "order-insensitive") {
                        Waiver::Granted => {}
                        Waiver::MissingReason => push(
                            &mut out,
                            relpath,
                            idx,
                            "hash-order",
                            format!("`{ty}` waiver needs a reason: `// lint: order-insensitive — <why>`"),
                        ),
                        Waiver::None => push(
                            &mut out,
                            relpath,
                            idx,
                            "hash-order",
                            format!(
                                "`{ty}` in a result-affecting crate: iteration order is \
                                 nondeterministic; use BTreeMap/BTreeSet or sorted iteration, \
                                 or waive with `// lint: order-insensitive — <why>`"
                            ),
                        ),
                    }
                }
            }
        }

        // Rule: wall-clock.  Simulated time is the only time: real-clock
        // reads make replays diverge.  `crates/shims` (vendored criterion)
        // and `crates/bench` (measures real durations) are exempt.
        if krate != "bench" {
            for src in ["Instant::now", "SystemTime"] {
                if code.contains(src) {
                    match waiver(&lines, idx, "wall-clock") {
                        Waiver::Granted => {}
                        Waiver::MissingReason => push(
                            &mut out,
                            relpath,
                            idx,
                            "wall-clock",
                            format!("`{src}` waiver needs a reason: `// lint: wall-clock — <why>`"),
                        ),
                        Waiver::None => push(
                            &mut out,
                            relpath,
                            idx,
                            "wall-clock",
                            format!(
                                "`{src}` outside crates/shims and crates/bench: wall-clock reads \
                                 break replay determinism; thread simulated time through instead, \
                                 or waive with `// lint: wall-clock — <why>`"
                            ),
                        ),
                    }
                }
            }
        }

        // Rule: wrapping.  Wrapping ops are correct in seed mixers (the
        // avalanche *wants* modular arithmetic) and a bug smell everywhere
        // else — a quantity that overflows u64 in scoring code is a logic
        // error that `wrapping_*` would silence.
        if !seed_mix_file && code.contains(".wrapping_") {
            match waiver(&lines, idx, "seed-mix") {
                Waiver::Granted => {}
                Waiver::MissingReason => push(
                    &mut out,
                    relpath,
                    idx,
                    "wrapping",
                    "wrapping-arithmetic waiver needs a reason: `// lint: seed-mix — <why>`".into(),
                ),
                Waiver::None => push(
                    &mut out,
                    relpath,
                    idx,
                    "wrapping",
                    "wrapping arithmetic outside the seed-mixing path: if this derives an RNG \
                     seed, waive with `// lint: seed-mix — <why>`; otherwise use checked math"
                        .into(),
                ),
            }
        }

        // Rule: unsafe-safety.  Every `unsafe` block, fn, or impl must be
        // introduced by a `// SAFETY:` comment, or (for declarations) a
        // doc-comment `# Safety` section.  The upward scan looks through the
        // contiguous run of comment, attribute, and blank lines above the
        // flagged line — a SAFETY comment separated by real code does not
        // count.  No waiver key — the SAFETY comment *is* the waiver.
        if has_token(code, "unsafe") {
            // The comment must *start* with `SAFETY` (after doc-comment `#`
            // header markers) — a passing mention of the word in prose does
            // not document an obligation.
            let is_safety = |l: &Line| {
                let t = l.comment.trim_start_matches(['/', '!', '#', ' ', '\t']);
                t.len() >= 6 && t[..6].eq_ignore_ascii_case("safety")
            };
            let mut documented = lines.get(idx).is_some_and(is_safety);
            let mut j = idx;
            while !documented && j > 0 {
                j -= 1;
                let above = &lines[j];
                if is_safety(above) {
                    documented = true;
                    break;
                }
                // Keep walking only over comment-only, attribute, or blank
                // lines; any other code terminates the introduction.
                let code_above = above.code.trim();
                if !(code_above.is_empty() || code_above.starts_with("#[")) {
                    break;
                }
            }
            if !documented {
                push(
                    &mut out,
                    relpath,
                    idx,
                    "unsafe-safety",
                    "`unsafe` without an introducing `// SAFETY:` comment or `# Safety` doc section"
                        .into(),
                );
            }
        }

        // Rule: narrow-cast.  `as f32` in a scoring/QoE path silently drops
        // precision and can flip near-tie comparisons (the PR 1 controller
        // argmax bug); keep scores in f64 end to end or waive explicitly.
        if scoring && code.contains("as f32") {
            match waiver(&lines, idx, "narrowing-ok") {
                Waiver::Granted => {}
                Waiver::MissingReason => push(
                    &mut out,
                    relpath,
                    idx,
                    "narrow-cast",
                    "narrowing waiver needs a reason: `// lint: narrowing-ok — <why>`".into(),
                ),
                Waiver::None => push(
                    &mut out,
                    relpath,
                    idx,
                    "narrow-cast",
                    "`as f32` in a scoring/QoE path: keep scores in f64 (near-ties flip under \
                     narrowing), or waive with `// lint: narrowing-ok — <why>`"
                        .into(),
                ),
            }
        }
    }
    out
}

/// Directories never scanned: vendored shims (external-API stand-ins), this
/// crate itself (its sources and fixtures contain the rule patterns by
/// design), build products, and non-source trees.
const SKIP_DIRS: &[&str] =
    &["target", ".git", ".github", "crates/shims", "crates/lint", "results", "docs", "scripts"];

/// Recursively collect the workspace's `.rs` files, workspace-relative.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if SKIP_DIRS.iter().any(|s| rel_str == *s || rel_str.starts_with(&format!("{s}/"))) {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(root, &path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(rel.to_path_buf());
        }
    }
}

/// Scan the whole workspace rooted at `root`; returns all violations in
/// path order.
pub fn scan_workspace(root: &Path) -> Vec<Violation> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files);
    let mut out = Vec::new();
    for rel in files {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if let Ok(source) = std::fs::read_to_string(root.join(&rel)) {
            out.extend(check_file(&rel_str, &source));
        }
    }
    out
}

/// The workspace root, resolved from this crate's manifest directory.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("workspace root")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitter_separates_code_and_comments() {
        let src = "let x = 1; // trailing note\n/* block\nspans */ let y = 2;\n";
        let lines = split_source(src);
        assert_eq!(lines.len(), 3);
        assert!(lines[0].code.contains("let x = 1;"));
        assert_eq!(lines[0].comment.trim(), "trailing note");
        assert!(lines[1].comment.contains("block"));
        assert!(lines[1].code.trim().is_empty());
        assert!(lines[2].code.contains("let y = 2;"));
    }

    #[test]
    fn splitter_blanks_string_literals() {
        let src = "let s = \"Instant::now is just text\"; let t = r#\"HashMap\"#;\n";
        let lines = split_source(src);
        assert!(!lines[0].code.contains("Instant::now"));
        assert!(!lines[0].code.contains("HashMap"));
        // The statement structure survives.
        assert!(lines[0].code.contains("let s ="));
        assert!(lines[0].code.contains("let t ="));
    }

    #[test]
    fn splitter_handles_char_literals_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }\nlet q = '\\'';\n";
        let lines = split_source(src);
        // Lifetime survives as code; the char literals are blanked.
        assert!(lines[0].code.contains("'a"));
        assert!(!lines[0].code.contains("'x'"));
        assert!(!lines[1].code.contains("\\'"));
    }

    #[test]
    fn token_matching_respects_boundaries() {
        assert!(has_token("use std::collections::HashMap;", "HashMap"));
        assert!(!has_token("struct MyHashMapLike;", "HashMap"));
        assert!(has_token("unsafe { x }", "unsafe"));
        assert!(!has_token("unsafely()", "unsafe"));
    }

    #[test]
    fn waiver_requires_reason() {
        let src = "// lint: order-insensitive\nlet s = std::collections::HashSet::new();\n";
        let v = check_file("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("needs a reason"));
        let src_ok =
            "// lint: order-insensitive — cardinality only\nlet s = std::collections::HashSet::new();\n";
        assert!(check_file("crates/core/src/x.rs", src_ok).is_empty());
    }

    #[test]
    fn scoping_excludes_non_result_crates() {
        let src = "use std::collections::HashMap;\n";
        assert!(!check_file("crates/core/src/x.rs", src).is_empty());
        // bench is not a result-affecting crate for hash-order.
        assert!(check_file("crates/bench/src/x.rs", src).is_empty());
        // ...but bench is still covered by unsafe-safety.
        assert!(!check_file("crates/bench/src/x.rs", "unsafe { f() }\n").is_empty());
        // Paths outside any known tree are skipped entirely.
        assert!(check_file("weird/path.rs", src).is_empty());
    }

    #[test]
    fn seed_mix_allowlist_covers_the_mixer() {
        let src = "let z = a.wrapping_add(1);\n";
        assert!(check_file("crates/platform/src/experiment.rs", src).is_empty());
        assert_eq!(check_file("crates/core/src/x.rs", src).len(), 1);
    }
}
