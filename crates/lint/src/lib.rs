//! Repo-invariant static analysis for the Puffer reproduction.
//!
//! The experiment's conclusions rest on *bit-exact* determinism and a
//! serving loop that ran unattended for months: randomized assignment must
//! replay identically, nightly retrains must be bit-identical at any thread
//! count, and the pinned hot paths must never panic mid-session nor allocate
//! in steady state.  Those invariants are easy to break silently — iterate a
//! `HashMap` into a fingerprint, call `Instant::now()` in a sim crate, slip
//! an `unwrap` three calls below `plan_with` — so this crate enforces them
//! mechanically, at analysis time, instead of hoping a reviewer notices.
//!
//! The build environment is offline (no `syn`), so everything is built on a
//! comment/string-aware lexical pass: source is split into per-line *code*
//! and *comment* channels ([`split_source`]), tokenized ([`tokens`]), walked
//! into a workspace symbol table of `fn` items ([`symbols`]), and linked
//! into a conservative name-resolved call graph ([`callgraph`]).  Two rule
//! families run on top ([`rules`]):
//!
//! - **Line rules** flag token patterns wherever they appear.
//! - **Reachability rules** start from functions annotated
//!   `// lint-root: panic-free` / `// lint-root: alloc-free` and flag panic
//!   or allocation sinks anywhere in the call-graph closure, reporting a
//!   root-to-sink witness chain.
//!
//! The escape hatch is an explicit, reasoned waiver comment that a reviewer
//! can audit:
//!
//! ```text
//! // lint: order-insensitive — set is only used for a cardinality check
//! let mut seen = std::collections::HashSet::new();
//! ```
//!
//! A waiver lives on the flagged line or the line directly above it, names
//! the rule key, and must carry a non-empty reason.  For the reachability
//! rules a waiver may also sit in the comment/attribute block introducing a
//! `fn`, where it covers every sink of that rule in the body (for kernels
//! that are bounds-checked by construction).  A keyed waiver with no reason
//! is itself a violation, and so is a waiver that no longer suppresses
//! anything (`stale-waiver`) — the waiver inventory cannot rot silently.
//!
//! ## Rules
//!
//! | rule id           | invariant                                                   | waiver key          |
//! |-------------------|-------------------------------------------------------------|---------------------|
//! | `hash-order`      | no `HashMap`/`HashSet` in result-affecting crates           | `order-insensitive` |
//! | `wall-clock`      | no `Instant::now`/`SystemTime` outside `shims`/`bench`      | `wall-clock`        |
//! | `wrapping`        | wrapping arithmetic only in seed/RNG-mixing code            | `seed-mix`          |
//! | `unsafe-safety`   | every `unsafe` is preceded by a `// SAFETY:` comment        | (none — document)   |
//! | `narrow-cast`     | no `as f32` narrowing in scoring/QoE paths                  | `narrowing-ok`      |
//! | `panic-reach`     | no panic sink reachable from a `panic-free` root            | `panic-free`        |
//! | `alloc-reach`     | no allocation sink reachable from an `alloc-free` root      | `alloc-free`        |
//! | `atomic-ordering` | every atomic `Ordering::*` carries a justification          | `atomic-ordering`   |
//! | `float-ord`       | no `partial_cmp` in result-affecting crates                 | `float-ord`         |
//! | `stale-waiver`    | every waiver/root annotation still does something           | (none — remove it)  |
//!
//! Run as `cargo run -p puffer-lint` (CI; `--format json` for the artifact,
//! `--explain <rule>` for the rationale) or via the `workspace_is_clean`
//! test, which makes `cargo test --workspace` itself the enforcement point.
//! The full invariant catalogue lives in `docs/INVARIANTS.md`.

pub mod callgraph;
pub mod rules;
pub mod symbols;
pub mod tokens;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// One line of source, split into its code and comment channels.
///
/// String and char literals are blanked out of `code` (replaced by a quoted
/// space) so rule patterns never match inside literals; comment text —
/// line, block, and doc comments — is routed to `comment` so waivers and
/// `SAFETY:` markers can be found without false-positive code matches.
#[derive(Debug, Clone, Default)]
pub struct Line {
    pub code: String,
    pub comment: String,
}

/// A single rule violation at a file/line position.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule identifier (`hash-order`, `panic-reach`, ...).
    pub rule: &'static str,
    pub msg: String,
    /// For reachability rules: the call chain from the annotated root down
    /// to the flagged sink, one `name (file:line)` entry per hop.
    pub witness: Vec<String>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.msg)
    }
}

/// Split Rust source into per-line code/comment channels.
///
/// Handles line comments, (nested) block comments, string literals with
/// escapes, raw strings (`r"…"`, `r#"…"#`, `br"…"`), byte strings, char
/// literals, and lifetimes (`'a` is code, `'x'` is a blanked literal).
/// The state machine is lexical, not a full lexer: its job is only to keep
/// rule patterns from matching inside literals or comments, and to expose
/// comment text for waiver parsing.
pub fn split_source(source: &str) -> Vec<Line> {
    #[derive(PartialEq, Clone, Copy)]
    enum St {
        Code,
        LineComment,
        Block(u32),
        Str,
        RawStr(u32),
    }
    let b: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut cur = Line::default();
    let mut st = St::Code;
    let mut i = 0usize;
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            if st == St::LineComment {
                st = St::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                if c == '/' && b.get(i + 1) == Some(&'/') {
                    st = St::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && b.get(i + 1) == Some(&'*') {
                    st = St::Block(1);
                    cur.code.push(' ');
                    i += 2;
                    continue;
                }
                // Raw / byte string prefixes: r"  r#"  br"  b"  (only when
                // the prefix letter is not the tail of a longer identifier).
                if (c == 'r' || c == 'b') && (i == 0 || !is_ident(b[i - 1])) {
                    let mut j = i + 1;
                    if c == 'b' && b.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    let rawish = c == 'r' || b.get(i + 1) == Some(&'r');
                    if b.get(j) == Some(&'"') && (rawish || hashes == 0) {
                        if rawish {
                            st = St::RawStr(hashes);
                        } else {
                            st = St::Str;
                        }
                        cur.code.push('"');
                        i = j + 1;
                        continue;
                    }
                }
                if c == '"' {
                    st = St::Str;
                    cur.code.push('"');
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    // Char literal vs lifetime: '\x' escapes and 'c' literals
                    // close with a quote; lifetimes ('a, 'static) do not.
                    if b.get(i + 1) == Some(&'\\') {
                        let mut j = i + 2;
                        while j < b.len() && b[j] != '\'' && b[j] != '\n' {
                            j += 1;
                        }
                        cur.code.push_str("' '");
                        i = (j + 1).min(b.len());
                        continue;
                    }
                    if b.get(i + 2) == Some(&'\'') {
                        cur.code.push_str("' '");
                        i += 3;
                        continue;
                    }
                    cur.code.push('\'');
                    i += 1;
                    continue;
                }
                cur.code.push(c);
                i += 1;
            }
            St::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            St::Block(depth) => {
                if c == '*' && b.get(i + 1) == Some(&'/') {
                    st = if depth == 1 { St::Code } else { St::Block(depth - 1) };
                    i += 2;
                } else if c == '/' && b.get(i + 1) == Some(&'*') {
                    st = St::Block(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    i += 2; // skip the escaped char (may be a quote)
                } else if c == '"' {
                    st = St::Code;
                    cur.code.push_str(" \"");
                    i += 1;
                } else {
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut n = 0u32;
                    while n < hashes && b.get(j) == Some(&'#') {
                        n += 1;
                        j += 1;
                    }
                    if n == hashes {
                        st = St::Code;
                        cur.code.push_str(" \"");
                        i = j;
                        continue;
                    }
                }
                i += 1;
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    lines
}

/// Does `code` contain `needle` as a whole token (neither neighbour is an
/// identifier character)?
pub(crate) fn has_token(code: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !code[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok =
            !code[after..].chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// Waiver lines that suppressed (or tried to suppress) a finding, keyed by
/// `(file index, 0-based line)`.  The stale-waiver rule flags every declared
/// waiver that never lands in this set.
#[derive(Debug, Default)]
pub(crate) struct Usage {
    pub used: BTreeSet<(usize, usize)>,
}

/// Outcome of looking for a waiver near a flagged position.  The
/// [`WaiverAt::MissingReason`] payload is the 0-based line the reasonless
/// waiver comment was found on, so the violation can point at it.
pub(crate) enum WaiverAt {
    /// No waiver comment with this key.
    None,
    /// Waiver present with a non-empty reason.
    Granted,
    /// Waiver key present but no reason given.
    MissingReason(usize),
}

/// Look for `lint: <key> <reason>` in the comment channel of any of the
/// candidate lines.  A hit (granted or reasonless) is recorded in `usage` so
/// the stale-waiver rule knows the comment is load-bearing.
pub(crate) fn waiver_on<I: IntoIterator<Item = usize>>(
    lines: &[Line],
    file: usize,
    candidates: I,
    key: &str,
    usage: &mut Usage,
) -> WaiverAt {
    let mut found_empty = None;
    for j in candidates {
        let Some(line) = lines.get(j) else { continue };
        let Some(pos) = line.comment.find("lint:") else { continue };
        let rest = line.comment[pos + "lint:".len()..].trim_start();
        if let Some(after_key) = rest.strip_prefix(key) {
            // The key must end at a token boundary: `panic-free-ish` is not
            // a `panic-free` waiver.
            if after_key.chars().next().is_some_and(|c| c.is_alphanumeric() || c == '-' || c == '_')
            {
                continue;
            }
            let reason = after_key.trim_start_matches([' ', '\u{2014}', ':', '\u{2013}']);
            if reason.trim().is_empty() {
                found_empty = Some(j);
            } else {
                usage.used.insert((file, j));
                return WaiverAt::Granted;
            }
        }
    }
    match found_empty {
        Some(j) => {
            usage.used.insert((file, j));
            WaiverAt::MissingReason(j)
        }
        None => WaiverAt::None,
    }
}

/// Waiver lookup on the flagged line or the line directly above it — the
/// placement every line rule accepts.
pub(crate) fn site_waiver(
    lines: &[Line],
    file: usize,
    idx: usize,
    key: &str,
    usage: &mut Usage,
) -> WaiverAt {
    waiver_on(lines, file, [idx, idx.wrapping_sub(1)], key, usage)
}

/// Crates whose output reaches results, telemetry, fingerprints, or model
/// weights — where hash-iteration order, wrapping arithmetic, or a partial
/// float comparison can corrupt the experiment.  `root` is the top-level
/// `puffer-repro` package (binaries, integration tests, examples), which
/// drives the RCT end to end.
pub(crate) const RESULT_CRATES: &[&str] =
    &["core", "abr", "platform", "nn", "stats", "trace", "media", "net", "root"];

/// Files that *are* the seed/RNG-mixing path: wrapping arithmetic is the
/// point there (splitmix-style avalanche), so no waiver is required.
pub(crate) const SEED_MIX_FILES: &[&str] = &["crates/platform/src/experiment.rs"];

/// Scoring/QoE paths where an `f64 → f32` narrowing can flip near-ties (the
/// PR 1 controller argmax bug): QoE arithmetic, SSIM, the planners, and the
/// statistics crate that turns telemetry into the paper's figures.
pub(crate) const SCORING_PATHS: &[&str] = &[
    "crates/media/src/qoe.rs",
    "crates/media/src/ssim.rs",
    "crates/core/src/controller.rs",
    "crates/abr/src/mpc.rs",
    "crates/abr/src/bola.rs",
    "crates/abr/src/bba.rs",
    "crates/stats/src/",
];

/// Which crate a workspace-relative path belongs to (`root` for the
/// top-level package's `src/`, `tests/`, and `examples/`).
pub(crate) fn crate_of(relpath: &str) -> Option<&str> {
    if let Some(rest) = relpath.strip_prefix("crates/") {
        return rest.split('/').next();
    }
    if relpath.starts_with("src/")
        || relpath.starts_with("tests/")
        || relpath.starts_with("examples/")
    {
        return Some("root");
    }
    None
}

/// Is this path in a crate whose output affects results/figures?
pub(crate) fn is_result_crate(relpath: &str) -> bool {
    crate_of(relpath).is_some_and(|k| RESULT_CRATES.contains(&k))
}

pub(crate) fn push(
    violations: &mut Vec<Violation>,
    file: &str,
    line: usize,
    rule: &'static str,
    msg: String,
) {
    violations.push(Violation {
        file: file.to_string(),
        line: line + 1,
        rule,
        msg,
        witness: Vec::new(),
    });
}

/// Crate-level dependency graph parsed from the workspace `Cargo.toml`s,
/// keyed by directory name (`nn`, `core`, ..., `root` for the top-level
/// package).  Call-graph resolution uses it to reject impossible edges: a
/// name-collision "call" from `platform` into `bench` cannot be real when
/// `platform` does not depend on `bench`.
#[derive(Debug, Default)]
pub struct DepGraph {
    deps: std::collections::BTreeMap<String, BTreeSet<String>>,
}

impl DepGraph {
    /// Declare `caller`'s direct dependencies — the hook multi-file tests
    /// use to exercise the edge filter; [`DepGraph::load`] is the
    /// production path.
    pub fn declare(&mut self, caller: &str, deps: &[&str]) {
        self.deps.insert(caller.to_string(), deps.iter().map(|s| s.to_string()).collect());
    }

    /// Parse `[workspace.dependencies]` (package name → path) from the root
    /// manifest, then each member's `[dependencies]` section.  Line-based:
    /// the manifests are plain `name.workspace = true` / `name = { path =
    /// ... }` entries, not general TOML.
    pub fn load(root: &Path) -> DepGraph {
        let dir_of_path = |p: &str| -> Option<String> {
            let p = p.trim_start_matches("../").trim_start_matches("./");
            let rest = p.strip_prefix("crates/").unwrap_or(p);
            (!rest.contains('/')).then(|| rest.to_string())
        };
        // Pass 1: workspace dependency table (name → crate dir).
        let mut name_to_dir = std::collections::BTreeMap::new();
        let root_manifest = std::fs::read_to_string(root.join("Cargo.toml")).unwrap_or_default();
        let mut in_ws_deps = false;
        for line in root_manifest.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                in_ws_deps = line == "[workspace.dependencies]";
                continue;
            }
            if !in_ws_deps {
                continue;
            }
            if let (Some(name), Some(pos)) = (line.split(['.', ' ', '=']).next(), line.find("path"))
            {
                if let Some(path) = line[pos..].split('"').nth(1) {
                    if let Some(dir) = dir_of_path(path) {
                        name_to_dir.insert(name.to_string(), dir);
                    }
                }
            }
        }
        // Pass 2: every member manifest's `[dependencies]`.
        let mut graph = DepGraph::default();
        let mut manifests = vec![("root".to_string(), root.join("Cargo.toml"))];
        if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
            for e in entries.flatten() {
                let dir = e.file_name().to_string_lossy().to_string();
                if dir != "shims" {
                    manifests.push((dir, e.path().join("Cargo.toml")));
                }
            }
        }
        for (krate, manifest) in manifests {
            let Ok(text) = std::fs::read_to_string(&manifest) else { continue };
            let mut in_deps = false;
            let entry = graph.deps.entry(krate).or_default();
            for line in text.lines() {
                let line = line.trim();
                if line.starts_with('[') {
                    in_deps = line == "[dependencies]";
                    continue;
                }
                if !in_deps || line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let Some(name) = line.split(['.', ' ', '=']).next() else { continue };
                if let Some(dir) = name_to_dir.get(name) {
                    entry.insert(dir.clone());
                } else if let Some(pos) = line.find("path") {
                    if let Some(path) = line[pos..].split('"').nth(1) {
                        if let Some(dir) = dir_of_path(path) {
                            entry.insert(dir);
                        }
                    }
                }
            }
        }
        graph
    }

    /// May code in crate `caller` call into crate `callee`?  True for the
    /// crate itself and its transitive dependencies; conservatively true
    /// when the graph is empty or the caller is unknown (in-memory corpora).
    pub fn allows(&self, caller: &str, callee: &str) -> bool {
        if caller == callee || self.deps.is_empty() {
            return true;
        }
        let Some(direct) = self.deps.get(caller) else { return true };
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut frontier: Vec<&str> = direct.iter().map(String::as_str).collect();
        while let Some(k) = frontier.pop() {
            if !seen.insert(k) {
                continue;
            }
            if k == callee {
                return true;
            }
            if let Some(next) = self.deps.get(k) {
                frontier.extend(next.iter().map(String::as_str));
            }
        }
        false
    }
}

/// One scanned file: its path, split lines, and token stream.
#[derive(Debug)]
pub struct CorpusFile {
    /// Workspace-relative path, `/`-separated.
    pub relpath: String,
    pub lines: Vec<Line>,
    pub tokens: Vec<tokens::Tok>,
}

/// Every scanned source file, pre-split and pre-tokenized.  The symbol
/// table, call graph, and all rules operate on this.
#[derive(Debug, Default)]
pub struct Corpus {
    pub files: Vec<CorpusFile>,
    /// Crate dependency graph; empty (allow-all) for in-memory corpora.
    pub deps: DepGraph,
}

impl Corpus {
    /// Build a corpus from in-memory `(relpath, source)` pairs — the entry
    /// point for fixtures and multi-file tests.
    pub fn from_sources(sources: Vec<(String, String)>) -> Corpus {
        let files = sources
            .into_iter()
            .map(|(relpath, source)| {
                let lines = split_source(&source);
                let tokens = tokens::tokenize(&lines);
                CorpusFile { relpath, lines, tokens }
            })
            .collect();
        Corpus { files, deps: DepGraph::default() }
    }

    /// Load every scannable `.rs` file under the workspace root.
    pub fn load(root: &Path) -> Corpus {
        let mut paths = Vec::new();
        collect_rs_files(root, root, &mut paths);
        let mut sources = Vec::new();
        for rel in paths {
            let rel_str = rel.to_string_lossy().replace('\\', "/");
            if let Ok(source) = std::fs::read_to_string(root.join(&rel)) {
                sources.push((rel_str, source));
            }
        }
        let mut corpus = Corpus::from_sources(sources);
        corpus.deps = DepGraph::load(root);
        corpus
    }

    /// Run the full pipeline — line rules, symbol table, call graph,
    /// reachability, stale-waiver audit — and return all violations sorted
    /// by position, deduplicated per `(file, line, rule)`.
    pub fn check(&self) -> Vec<Violation> {
        let symbols = symbols::SymbolTable::build(self);
        let graph = callgraph::CallGraph::build(self, &symbols);
        let mut usage = Usage::default();
        let mut out = Vec::new();
        for file_idx in 0..self.files.len() {
            rules::lines::check(self, file_idx, &mut usage, &mut out);
        }
        rules::atomic::check(self, &symbols, &mut usage, &mut out);
        rules::float_ord::check(self, &symbols, &mut usage, &mut out);
        rules::reach::check(self, &symbols, &graph, &mut usage, &mut out);
        rules::stale::check(self, &symbols, &usage, &mut out);
        out.sort_by(|a, b| {
            (&a.file, a.line, a.rule, &a.msg).cmp(&(&b.file, b.line, b.rule, &b.msg))
        });
        out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.rule == b.rule);
        out
    }
}

/// Run every rule over one file.  `relpath` must be workspace-relative with
/// `/` separators — rule scoping keys off it.
pub fn check_file(relpath: &str, source: &str) -> Vec<Violation> {
    Corpus::from_sources(vec![(relpath.to_string(), source.to_string())]).check()
}

/// Directories never scanned: vendored shims (external-API stand-ins), this
/// crate itself (its sources and fixtures contain the rule patterns by
/// design), build products, and non-source trees.
const SKIP_DIRS: &[&str] =
    &["target", ".git", ".github", "crates/shims", "crates/lint", "results", "docs", "scripts"];

/// Recursively collect the workspace's `.rs` files, workspace-relative.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if SKIP_DIRS.iter().any(|s| rel_str == *s || rel_str.starts_with(&format!("{s}/"))) {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(root, &path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(rel.to_path_buf());
        }
    }
}

/// Scan the whole workspace rooted at `root`; returns all violations in
/// path order.
pub fn scan_workspace(root: &Path) -> Vec<Violation> {
    Corpus::load(root).check()
}

/// The workspace root, resolved from this crate's manifest directory.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("workspace root")
}

/// `(rule id, one-paragraph rationale)` for `--explain`.
pub const RULES: &[(&str, &str)] = &[
    (
        "hash-order",
        "HashMap/HashSet iteration order is randomized per process (RandomState). Any \
         iteration in a result-affecting crate can reorder fingerprint input, telemetry, or \
         model updates, silently breaking bit-exact replay. Use BTreeMap/BTreeSet or sorted \
         iteration; waive with `// lint: order-insensitive — <why>` when order provably \
         cannot reach a result.",
    ),
    (
        "wall-clock",
        "Simulated time is the only time: `Instant::now`/`SystemTime` reads make replays \
         diverge between runs and machines. Thread simulated time through instead; \
         crates/shims and crates/bench (which measure real durations) are exempt. Waive \
         with `// lint: wall-clock — <why>`.",
    ),
    (
        "wrapping",
        "Wrapping arithmetic is correct in seed mixers (the avalanche wants modular \
         arithmetic) and a bug smell everywhere else — an overflow in scoring code is a \
         logic error that `wrapping_*` would silence. Waive with `// lint: seed-mix — <why>` \
         when the value feeds an RNG seed.",
    ),
    (
        "unsafe-safety",
        "Every `unsafe` block, fn, or impl must be introduced by a `// SAFETY:` comment (or \
         a `# Safety` doc section) in the contiguous comment/attribute block above it. \
         There is no waiver key — the SAFETY comment is the waiver.",
    ),
    (
        "narrow-cast",
        "`as f32` in a scoring/QoE path silently drops precision and can flip near-tie \
         comparisons (the PR 1 controller argmax bug). Keep scores in f64 end to end; waive \
         with `// lint: narrowing-ok — <why>`.",
    ),
    (
        "panic-reach",
        "Functions annotated `// lint-root: panic-free` (the serve-loop planners, the TTP \
         inference entry points, the kernel tiers, the training epoch loop) must not reach \
         — through any chain of workspace calls — an `unwrap`/`expect`, a panicking macro, \
         a slice index `[i]`, or an integer `/`·`%`. The finding carries the root-to-sink \
         call chain as a witness. `debug_assert!` bodies are exempt (compiled out in \
         release). Waive a bounds-checked-by-construction site with \
         `// lint: panic-free — <why>` on the line, or in the fn's intro block to cover \
         the whole body.",
    ),
    (
        "alloc-reach",
        "Functions annotated `// lint-root: alloc-free` must not reach an allocation sink \
         (`Vec::push`, `with_capacity`, `collect`, `to_vec`, `Box::new`, `format!`, \
         `String::from`, ...). This makes the zero-allocation steady state of \
         tests/alloc_gate.rs a static property instead of a sampled one. Grow-once scratch \
         paths that the alloc gate pins as steady-state no-ops are waived with \
         `// lint: alloc-free — <why>` at the site or on the fn.",
    ),
    (
        "atomic-ordering",
        "Every atomic memory ordering (`Ordering::Relaxed`, `Acquire`, `Release`, `AcqRel`, \
         `SeqCst`) must carry a justification: `// lint: atomic-ordering — <why this \
         ordering suffices>`. Orderings are correctness claims about cross-thread \
         visibility; an undocumented `Relaxed` is indistinguishable from an unexamined one.",
    ),
    (
        "float-ord",
        "`partial_cmp` over floats in a result-affecting crate returns None on NaN, and \
         `.unwrap()`-ing it panics mid-session; comparator closures built on it also \
         disagree with the repo's total-order helpers on -0.0/NaN. Route through \
         `f64::total_cmp` or the repo's argmax helpers; waive with \
         `// lint: float-ord — <why>` when inputs provably exclude NaN and the ordering \
         cannot reach a result.",
    ),
    (
        "stale-waiver",
        "A `// lint: <key>` waiver that no longer suppresses any finding, an unknown waiver \
         key, or a dangling `// lint-root:` annotation not attached to a fn is itself a \
         violation. Remove it — an unused waiver misleads reviewers about where the \
         dangerous sites are.",
    ),
];

/// Rationale text for `--explain <rule>`.
pub fn explain(rule: &str) -> Option<&'static str> {
    RULES.iter().find(|(id, _)| *id == rule).map(|(_, text)| *text)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render violations as a machine-readable JSON report (std-only writer;
/// schema: `{"count": N, "violations": [{file, line, rule, msg, witness}]}`).
pub fn to_json(violations: &[Violation]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"count\": {},\n", violations.len()));
    out.push_str("  \"violations\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"file\": \"{}\", ", json_escape(&v.file)));
        out.push_str(&format!("\"line\": {}, ", v.line));
        out.push_str(&format!("\"rule\": \"{}\", ", json_escape(v.rule)));
        out.push_str(&format!("\"msg\": \"{}\", ", json_escape(&v.msg)));
        out.push_str("\"witness\": [");
        for (j, w) in v.witness.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", json_escape(w)));
        }
        out.push_str("]}");
    }
    if !violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitter_separates_code_and_comments() {
        let src = "let x = 1; // trailing note\n/* block\nspans */ let y = 2;\n";
        let lines = split_source(src);
        assert_eq!(lines.len(), 3);
        assert!(lines[0].code.contains("let x = 1;"));
        assert_eq!(lines[0].comment.trim(), "trailing note");
        assert!(lines[1].comment.contains("block"));
        assert!(lines[1].code.trim().is_empty());
        assert!(lines[2].code.contains("let y = 2;"));
    }

    #[test]
    fn splitter_blanks_string_literals() {
        let src = "let s = \"Instant::now is just text\"; let t = r#\"HashMap\"#;\n";
        let lines = split_source(src);
        assert!(!lines[0].code.contains("Instant::now"));
        assert!(!lines[0].code.contains("HashMap"));
        // The statement structure survives.
        assert!(lines[0].code.contains("let s ="));
        assert!(lines[0].code.contains("let t ="));
    }

    #[test]
    fn splitter_handles_char_literals_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }\nlet q = '\\'';\n";
        let lines = split_source(src);
        // Lifetime survives as code; the char literals are blanked.
        assert!(lines[0].code.contains("'a"));
        assert!(!lines[0].code.contains("'x'"));
        assert!(!lines[1].code.contains("\\'"));
    }

    #[test]
    fn token_matching_respects_boundaries() {
        assert!(has_token("use std::collections::HashMap;", "HashMap"));
        assert!(!has_token("struct MyHashMapLike;", "HashMap"));
        assert!(has_token("unsafe { x }", "unsafe"));
        assert!(!has_token("unsafely()", "unsafe"));
    }

    #[test]
    fn waiver_requires_reason() {
        let src = "// lint: order-insensitive\nlet s = std::collections::HashSet::new();\n";
        let v = check_file("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("needs a reason"));
        let src_ok =
            "// lint: order-insensitive — cardinality only\nlet s = std::collections::HashSet::new();\n";
        assert!(check_file("crates/core/src/x.rs", src_ok).is_empty());
    }

    #[test]
    fn scoping_excludes_non_result_crates() {
        let src = "use std::collections::HashMap;\n";
        assert!(!check_file("crates/core/src/x.rs", src).is_empty());
        // bench is not a result-affecting crate for hash-order.
        assert!(check_file("crates/bench/src/x.rs", src).is_empty());
        // ...but bench is still covered by unsafe-safety.
        assert!(!check_file("crates/bench/src/x.rs", "unsafe { f() }\n").is_empty());
        // Paths outside any known tree are skipped entirely.
        assert!(check_file("weird/path.rs", src).is_empty());
    }

    #[test]
    fn seed_mix_allowlist_covers_the_mixer() {
        let src = "let z = a.wrapping_add(1);\n";
        assert!(check_file("crates/platform/src/experiment.rs", src).is_empty());
        assert_eq!(check_file("crates/core/src/x.rs", src).len(), 1);
    }

    #[test]
    fn every_rule_has_an_explanation() {
        for rule in [
            "hash-order",
            "wall-clock",
            "wrapping",
            "unsafe-safety",
            "narrow-cast",
            "panic-reach",
            "alloc-reach",
            "atomic-ordering",
            "float-ord",
            "stale-waiver",
        ] {
            assert!(explain(rule).is_some(), "no explanation for {rule}");
        }
        assert!(explain("no-such-rule").is_none());
    }

    #[test]
    fn json_report_escapes_and_nests() {
        let v = vec![Violation {
            file: "crates/core/src/x.rs".into(),
            line: 3,
            rule: "panic-reach",
            msg: "say \"no\"".into(),
            witness: vec!["root (a.rs:1)".into(), "sink (b.rs:2)".into()],
        }];
        let j = to_json(&v);
        assert!(j.contains("\"count\": 1"));
        assert!(j.contains("say \\\"no\\\""));
        assert!(j.contains("\"witness\": [\"root (a.rs:1)\", \"sink (b.rs:2)\"]"));
        assert!(to_json(&[]).contains("\"count\": 0"));
    }
}
