//! Intra-workspace call graph with conservative name-based resolution.
//!
//! For every function body in the symbol table, a scan over its token span
//! extracts call sites — bare calls `f(...)`, method calls `.f(...)`
//! (turbofish tolerated), path calls `Qual::f(...)`, and macro invocations
//! `m!(...)` — and resolves each to workspace definitions *by name*:
//!
//! - `Qual::f(...)` restricts to impls of `Qual` when any exist (`Self::`
//!   uses the caller's own type).  A capitalized qualifier with no
//!   workspace impl names a foreign type (`Vec::new`, `Box::new`) and
//!   resolves to nothing; a lowercase qualifier is a module path and
//!   resolves to the free fns of that name.
//! - `.f(...)` and `f(...)` link to every same-named non-test definition —
//!   **except** method calls whose name is in the panic/alloc effect tables
//!   (`.push(`, `.resize(`, `.unwrap(`, ...): those are std-container
//!   shadows, classified as sinks at the call site itself, so edge-linking
//!   them to coincidentally same-named workspace methods would only
//!   fabricate cross-module chains.
//! - Every edge must be possible under the crate dependency graph
//!   ([`crate::DepGraph`]): `platform` code cannot call into `bench`.
//!
//! Within those constraints, over-approximation is the point: an edge too
//! many costs a reviewer an audited waiver, an edge too few would let a
//! panicking path hide from the reachability rules.  Calls that resolve to
//! nothing are classified by the effect tables in [`crate::rules`] (std
//! `Vec::push` allocates, std `unwrap` panics, ...).  Indirect calls
//! through function pointers or closures passed as values are not tracked —
//! the dynamic gates (`tests/alloc_gate.rs`, Miri) back that blind spot.

use crate::symbols::SymbolTable;
use crate::tokens::{Kind, Tok};
use crate::Corpus;
use std::collections::BTreeMap;

/// How a call site is spelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `f(...)`
    Bare,
    /// `.f(...)` — receiver type unknown.
    Method,
    /// `Qual::f(...)`.
    Path,
    /// `m!(...)` — macros never resolve to workspace fns.
    Macro,
}

/// One extracted call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (last path segment / method name / macro name).
    pub name: String,
    /// Immediate qualifier for [`CallKind::Path`] (`Box` in `Box::new`).
    pub qual: Option<String>,
    /// 0-based line of the callee token.
    pub line: usize,
    pub kind: CallKind,
}

/// Call sites and resolved edges for every function in the symbol table.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Per-fn extracted call sites (parallel to `SymbolTable::fns`).
    pub calls: Vec<Vec<CallSite>>,
    /// Per-fn resolved edges: `(callee fn index, call line)`.
    pub edges: Vec<Vec<(usize, usize)>>,
}

impl CallGraph {
    pub fn build(corpus: &Corpus, symbols: &SymbolTable) -> CallGraph {
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in symbols.fns.iter().enumerate() {
            if !f.is_test {
                by_name.entry(&f.name).or_default().push(i);
            }
        }

        let mut graph = CallGraph::default();
        for (fn_idx, f) in symbols.fns.iter().enumerate() {
            let Some((start, end)) = f.body else {
                graph.calls.push(Vec::new());
                graph.edges.push(Vec::new());
                continue;
            };
            let toks = &corpus.files[f.file].tokens;
            let children = child_spans(symbols, fn_idx);
            let sites = extract_calls(toks, start, end, &children);
            let caller_crate = crate::crate_of(&corpus.files[f.file].relpath);
            let mut edges = Vec::new();
            for site in &sites {
                for callee in resolve_site(site, f.self_type.as_deref(), symbols, &by_name) {
                    let callee_crate =
                        crate::crate_of(&corpus.files[symbols.fns[callee].file].relpath);
                    if let (Some(from), Some(to)) = (caller_crate, callee_crate) {
                        if !corpus.deps.allows(from, to) {
                            continue;
                        }
                    }
                    edges.push((callee, site.line));
                }
            }
            graph.calls.push(sites);
            graph.edges.push(edges);
        }
        graph
    }
}

/// Token spans of `fn` items nested inside `fn_idx`'s body (from each
/// child's `fn` keyword through its closing brace).  Nested items own their
/// tokens: both call extraction and the reachability sink scans skip them.
pub(crate) fn child_spans(symbols: &SymbolTable, fn_idx: usize) -> Vec<(usize, usize)> {
    let f = &symbols.fns[fn_idx];
    let Some((start, end)) = f.body else { return Vec::new() };
    symbols
        .fns
        .iter()
        .filter(|c| c.file == f.file && c.intro_tok > start && c.intro_tok < end)
        .map(|c| (c.intro_tok, c.body.map_or(c.intro_tok, |(_, e)| e)))
        .collect()
}

/// Candidate fn indices a call site resolves to (empty ⇒ std/shim call,
/// classified by the effect tables).  Path calls whose qualifier names a
/// workspace type with same-named methods restrict to that type's impls
/// (`Self::` uses the caller's own type); a capitalized qualifier with no
/// workspace impl is a foreign type and resolves to nothing; a lowercase
/// qualifier is a module path and resolves to free fns only.  Method calls
/// whose name appears in the effect tables are std-container shadows and
/// resolve to nothing — the sink fires at the call site itself.
fn resolve_site(
    site: &CallSite,
    caller_self: Option<&str>,
    symbols: &SymbolTable,
    by_name: &BTreeMap<&str, Vec<usize>>,
) -> Vec<usize> {
    if site.kind == CallKind::Macro {
        return Vec::new();
    }
    if site.kind == CallKind::Method
        && (crate::rules::ALLOC_CALLS.contains(&site.name.as_str())
            || crate::rules::PANIC_CALLS.contains(&site.name.as_str()))
    {
        return Vec::new();
    }
    let Some(all) = by_name.get(site.name.as_str()) else { return Vec::new() };
    if site.kind == CallKind::Path {
        let qual = match site.qual.as_deref() {
            Some("Self") => caller_self,
            q => q,
        };
        if let Some(qual) = qual {
            let restricted: Vec<usize> = all
                .iter()
                .copied()
                .filter(|&i| symbols.fns[i].self_type.as_deref() == Some(qual))
                .collect();
            if !restricted.is_empty() {
                return restricted;
            }
            if qual.starts_with(|c: char| c.is_ascii_uppercase()) {
                // Foreign type (`Vec::new`, `Box::new`): effect tables cover it.
                return Vec::new();
            }
            // Module path: only free fns are addressable this way.
            return all.iter().copied().filter(|&i| symbols.fns[i].self_type.is_none()).collect();
        }
    }
    all.clone()
}

/// Extract every call site in `toks[start..=end]`, skipping nested-item
/// spans.
fn extract_calls(toks: &[Tok], start: usize, end: usize, skip: &[(usize, usize)]) -> Vec<CallSite> {
    let mut out = Vec::new();
    let mut i = start;
    while i <= end && i < toks.len() {
        if let Some(&(_, child_end)) = skip.iter().find(|&&(s, e)| i >= s && i <= e) {
            i = child_end + 1;
            continue;
        }
        let t = &toks[i];
        if t.kind != Kind::Ident {
            i += 1;
            continue;
        }
        // Macro invocation: `name!`.
        if toks.get(i + 1).is_some_and(|n| n.text == "!") {
            out.push(CallSite {
                name: t.text.clone(),
                qual: None,
                line: t.line,
                kind: CallKind::Macro,
            });
            i += 2;
            continue;
        }
        // Call shapes: `name(` directly, or `name::<T>(` with a turbofish.
        let mut open = i + 1;
        if toks.get(open).is_some_and(|n| n.text == "::")
            && toks.get(open + 1).is_some_and(|n| n.text == "<")
        {
            let mut depth = 0i32;
            let mut j = open + 1;
            while j <= end && j < toks.len() {
                match toks[j].text.as_str() {
                    "<" => depth += 1,
                    ">" => depth -= 1,
                    _ => {}
                }
                j += 1;
                if depth == 0 {
                    break;
                }
            }
            open = j;
        }
        if toks.get(open).is_none_or(|n| n.text != "(") {
            i += 1;
            continue;
        }
        let prev = if i == 0 { None } else { Some(&toks[i - 1]) };
        let site = match prev.map(|p| p.text.as_str()) {
            Some(".") => {
                CallSite { name: t.text.clone(), qual: None, line: t.line, kind: CallKind::Method }
            }
            Some("::") => {
                let qual = toks
                    .get(i.wrapping_sub(2))
                    .filter(|q| q.kind == Kind::Ident)
                    .map(|q| q.text.clone());
                CallSite { name: t.text.clone(), qual, line: t.line, kind: CallKind::Path }
            }
            _ => CallSite { name: t.text.clone(), qual: None, line: t.line, kind: CallKind::Bare },
        };
        out.push(site);
        i += 1;
    }
    out
}

/// Multi-source BFS over the call graph; returns, for every reachable fn,
/// the edge it was first discovered through: `(parent fn, call line)` —
/// `None` for the roots themselves.  Traversal order is by fn index at each
/// frontier, so witnesses are deterministic.
pub fn reach(graph: &CallGraph, roots: &[usize]) -> BTreeMap<usize, Option<(usize, usize)>> {
    let mut parent: BTreeMap<usize, Option<(usize, usize)>> = BTreeMap::new();
    let mut frontier: Vec<usize> = Vec::new();
    for &r in roots {
        if parent.insert(r, None).is_none() {
            frontier.push(r);
        }
    }
    while !frontier.is_empty() {
        frontier.sort_unstable();
        let mut next = Vec::new();
        for &f in &frontier {
            for &(callee, line) in &graph.edges[f] {
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(callee) {
                    e.insert(Some((f, line)));
                    next.push(callee);
                }
            }
        }
        frontier = next;
    }
    parent
}

/// Render the call chain from a root down to `target` as
/// `root (file:line) → ... → target (file:line)`, using 1-based lines.
pub fn witness_chain(
    symbols: &SymbolTable,
    corpus: &Corpus,
    parents: &BTreeMap<usize, Option<(usize, usize)>>,
    target: usize,
) -> Vec<String> {
    let mut rev = Vec::new();
    let mut cur = target;
    loop {
        let f = &symbols.fns[cur];
        rev.push(format!(
            "{} ({}:{})",
            f.qualified(),
            corpus.files[f.file].relpath,
            f.decl_line + 1
        ));
        match parents.get(&cur) {
            Some(Some((p, _line))) => cur = *p,
            _ => break,
        }
    }
    rev.reverse();
    rev
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(src: &str) -> (Corpus, SymbolTable, CallGraph) {
        let corpus =
            Corpus::from_sources(vec![("crates/core/src/controller.rs".into(), src.into())]);
        let symbols = SymbolTable::build(&corpus);
        let graph = CallGraph::build(&corpus, &symbols);
        (corpus, symbols, graph)
    }

    #[test]
    fn extracts_call_shapes() {
        let (_, symbols, graph) = setup(
            "fn caller(m: &Matrix) {\n\
                 helper(1);\n\
                 m.method(2);\n\
                 Matrix::zeros(3, 4);\n\
                 vals.iter().collect::<Vec<_>>();\n\
                 panic!(\"boom\");\n\
             }\n",
        );
        assert_eq!(symbols.fns.len(), 1);
        let kinds: Vec<(String, CallKind)> =
            graph.calls[0].iter().map(|c| (c.name.clone(), c.kind)).collect();
        assert!(kinds.contains(&("helper".into(), CallKind::Bare)));
        assert!(kinds.contains(&("method".into(), CallKind::Method)));
        assert!(kinds.contains(&("zeros".into(), CallKind::Path)));
        assert!(kinds.contains(&("collect".into(), CallKind::Method)), "turbofish method");
        assert!(kinds.contains(&("panic".into(), CallKind::Macro)));
    }

    #[test]
    fn name_resolution_links_same_named_fns() {
        let (_, symbols, graph) = setup(
            "fn a() { b(); }\n\
             fn b() { c.helper(); }\n\
             struct S;\n\
             impl S { fn helper(&self) {} }\n",
        );
        let a = symbols.fns.iter().position(|f| f.name == "a").unwrap();
        let b = symbols.fns.iter().position(|f| f.name == "b").unwrap();
        let helper = symbols.fns.iter().position(|f| f.name == "helper").unwrap();
        assert_eq!(graph.edges[a], vec![(b, 0)]);
        assert_eq!(graph.edges[b], vec![(helper, 1)]);
    }

    #[test]
    fn qualified_paths_restrict_to_the_named_impl() {
        let (_, symbols, graph) = setup(
            "struct A; struct B;\n\
             impl A { fn make() {} }\n\
             impl B { fn make() {} }\n\
             fn go() { A::make(); }\n",
        );
        let go = symbols.fns.iter().position(|f| f.name == "go").unwrap();
        let a_make = symbols
            .fns
            .iter()
            .position(|f| f.name == "make" && f.self_type.as_deref() == Some("A"))
            .unwrap();
        assert_eq!(graph.edges[go], vec![(a_make, 3)]);
    }

    #[test]
    fn test_fns_are_not_candidates() {
        let (_, symbols, graph) = setup(
            "fn go() { helper(); }\n\
             #[cfg(test)]\n\
             mod tests { fn helper() {} }\n",
        );
        let go = symbols.fns.iter().position(|f| f.name == "go").unwrap();
        assert!(graph.edges[go].is_empty());
    }

    #[test]
    fn reachability_and_witness_chain() {
        let (corpus, symbols, graph) = setup(
            "fn root() { mid(); }\n\
             fn mid() { leaf(); }\n\
             fn leaf() {}\n\
             fn unrelated() {}\n",
        );
        let root = symbols.fns.iter().position(|f| f.name == "root").unwrap();
        let leaf = symbols.fns.iter().position(|f| f.name == "leaf").unwrap();
        let parents = reach(&graph, &[root]);
        assert_eq!(parents.len(), 3, "unrelated stays unreached");
        let chain = witness_chain(&symbols, &corpus, &parents, leaf);
        assert_eq!(
            chain,
            [
                "root (crates/core/src/controller.rs:1)",
                "mid (crates/core/src/controller.rs:2)",
                "leaf (crates/core/src/controller.rs:3)",
            ]
        );
    }
}
