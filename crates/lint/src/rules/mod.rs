//! Rule implementations.
//!
//! Two families share this directory:
//!
//! - **Line rules** (`lines`, `atomic`, `float_ord`) flag token patterns
//!   wherever they appear (scoped by crate/path, skipping test code where
//!   the symbol table knows it).
//! - **Reachability rules** (`reach`) walk the call graph from annotated
//!   roots and flag panic/allocation sinks anywhere in the reachable
//!   closure, with a root-to-sink witness chain on every finding.
//!
//! `stale` runs last: any waiver or root annotation no rule consulted is
//! itself a violation, so the waiver inventory can never rot silently.

pub(crate) mod atomic;
pub(crate) mod float_ord;
pub(crate) mod lines;
pub(crate) mod reach;
pub(crate) mod stale;

/// Macros that unconditionally (or conditionally, like the `assert` family)
/// abort the current thread.  `debug_assert*` is deliberately absent: it
/// compiles out of release builds, which are what serve sessions.
pub(crate) const PANIC_MACROS: &[&str] =
    &["panic", "assert", "assert_eq", "assert_ne", "unreachable", "todo", "unimplemented"];

/// Method/function names that panic on `None`/`Err`.
pub(crate) const PANIC_CALLS: &[&str] = &["unwrap", "expect"];

/// Macros that allocate their result.
pub(crate) const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Method/function names that (can) allocate, regardless of receiver: the
/// effect table for calls that do not resolve to a workspace definition.
/// Resolved calls are also flagged — a workspace `resize` that grows a `Vec`
/// allocates just like the std one — so a waiver documents the steady-state
/// argument at the call site either way.
pub(crate) const ALLOC_CALLS: &[&str] = &[
    "push",
    "push_str",
    "insert",
    "append",
    "extend",
    "extend_from_slice",
    "resize",
    "resize_with",
    "reserve",
    "reserve_exact",
    "collect",
    "to_vec",
    "to_owned",
    "to_string",
    "with_capacity",
    "into_boxed_slice",
    "split_off",
    "concat",
    "join",
    "repeat",
];

/// `(qualifier, name)` path calls that allocate even though the bare name is
/// too generic to put in [`ALLOC_CALLS`] (`f64::from` must stay clean).
pub(crate) const ALLOC_QUAL_CALLS: &[(&str, &str)] =
    &[("Box", "new"), ("String", "from"), ("Vec", "from"), ("PathBuf", "from")];

/// The five atomic memory-ordering variants (never `cmp::Ordering`'s).
pub(crate) const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// 0-based line ranges (inclusive) of test functions in one file, so line
/// rules that exempt test code can check membership cheaply.
pub(crate) fn test_line_ranges(
    corpus: &crate::Corpus,
    symbols: &crate::symbols::SymbolTable,
    file_idx: usize,
) -> Vec<(usize, usize)> {
    let toks = &corpus.files[file_idx].tokens;
    symbols
        .fns
        .iter()
        .filter(|f| f.file == file_idx && f.is_test)
        .filter_map(|f| f.body.map(|(_, end)| (f.decl_line, toks[end].line)))
        .collect()
}

pub(crate) fn in_ranges(ranges: &[(usize, usize)], line: usize) -> bool {
    ranges.iter().any(|&(s, e)| line >= s && line <= e)
}
