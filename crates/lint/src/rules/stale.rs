//! Rule: stale-waiver — the waiver inventory cannot rot.
//!
//! Runs after every other rule, with the set of waiver lines they actually
//! consulted.  Three findings:
//!
//! - a `// lint: <key>` comment no rule consulted — the violation it once
//!   suppressed is gone, so the waiver is stale and must be removed;
//! - a `// lint:` comment with an unknown key — it suppresses nothing and
//!   probably misspells a real one;
//! - a `// lint-root:` annotation not attached to a fn declaration (or
//!   naming an unknown kind) — it roots nothing.

use crate::symbols::{parse_root_kinds, SymbolTable};
use crate::{crate_of, push, Corpus, Usage, Violation};

/// Every waiver key a rule consults.
pub(crate) const KNOWN_WAIVER_KEYS: &[&str] = &[
    "order-insensitive",
    "wall-clock",
    "seed-mix",
    "narrowing-ok",
    "panic-free",
    "alloc-free",
    "atomic-ordering",
    "float-ord",
];

pub(crate) fn check(
    corpus: &Corpus,
    symbols: &SymbolTable,
    usage: &Usage,
    out: &mut Vec<Violation>,
) {
    for (file_idx, file) in corpus.files.iter().enumerate() {
        if crate_of(&file.relpath).is_none() {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            let comment = line.comment.as_str();
            if let Some((kinds, unknown)) = parse_root_kinds(comment) {
                for u in &unknown {
                    push(
                        out,
                        &file.relpath,
                        idx,
                        "stale-waiver",
                        format!("unknown `lint-root:` kind `{u}` (known: panic-free, alloc-free)"),
                    );
                }
                if !symbols.claimed_root_lines.contains(&(file_idx, idx))
                    && (unknown.is_empty() || !kinds.is_empty())
                {
                    push(
                        out,
                        &file.relpath,
                        idx,
                        "stale-waiver",
                        "dangling `lint-root:` annotation — not in the comment/attribute \
                         block of any fn declaration"
                            .to_string(),
                    );
                }
                continue;
            }
            let Some(pos) = comment.find("lint:") else { continue };
            let rest = comment[pos + "lint:".len()..].trim_start();
            let key: String =
                rest.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '-').collect();
            if !KNOWN_WAIVER_KEYS.contains(&key.as_str()) {
                push(
                    out,
                    &file.relpath,
                    idx,
                    "stale-waiver",
                    format!(
                        "unknown waiver key `{key}` — known keys: {}",
                        KNOWN_WAIVER_KEYS.join(", ")
                    ),
                );
            } else if !usage.used.contains(&(file_idx, idx)) {
                push(
                    out,
                    &file.relpath,
                    idx,
                    "stale-waiver",
                    format!(
                        "stale waiver `{key}`: no finding here is suppressed by it any more — \
                         remove the comment"
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::check_file;

    #[test]
    fn unused_waiver_is_stale() {
        let v = check_file(
            "crates/core/src/x.rs",
            "// lint: order-insensitive — once suppressed a HashSet here\nlet x = 1;\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "stale-waiver");
        assert!(v[0].msg.contains("stale waiver `order-insensitive`"));
    }

    #[test]
    fn consulted_waiver_is_not_stale() {
        let v = check_file(
            "crates/core/src/x.rs",
            "// lint: order-insensitive — cardinality only\n\
             let s = std::collections::HashSet::new();\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unknown_key_and_dangling_root_are_flagged() {
        let v = check_file(
            "crates/core/src/x.rs",
            "// lint: no-such-rule — typo\n// lint-root: panic-free\nlet x = 1;\n",
        );
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].msg.contains("unknown waiver key `no-such-rule`"));
        assert!(v[1].msg.contains("dangling `lint-root:`"));
    }

    #[test]
    fn unknown_root_kind_is_flagged() {
        let v = check_file(
            "crates/core/src/x.rs",
            "// lint-root: alloc-free, never-fails\nfn f() {}\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("unknown `lint-root:` kind `never-fails`"));
    }
}
