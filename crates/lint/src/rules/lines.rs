//! The original per-line rules: hash-order, wall-clock, wrapping,
//! unsafe-safety, narrow-cast.  Semantics are unchanged from the PR 4
//! scanner; the only addition is that every waiver consult is recorded in
//! [`crate::Usage`] so the stale-waiver audit can see which comments are
//! load-bearing.

use crate::{
    crate_of, has_token, push, site_waiver, Corpus, Line, Usage, Violation, WaiverAt,
    RESULT_CRATES, SCORING_PATHS, SEED_MIX_FILES,
};

pub(crate) fn check(corpus: &Corpus, file_idx: usize, usage: &mut Usage, out: &mut Vec<Violation>) {
    let file = &corpus.files[file_idx];
    let relpath = file.relpath.as_str();
    let lines = &file.lines;
    let Some(krate) = crate_of(relpath) else { return };
    let result_crate = RESULT_CRATES.contains(&krate);
    let scoring = SCORING_PATHS.iter().any(|p| relpath.starts_with(p));
    let seed_mix_file = SEED_MIX_FILES.contains(&relpath);

    for (idx, line) in lines.iter().enumerate() {
        let code = line.code.as_str();

        // Rule: hash-order.  HashMap/HashSet iteration order varies per
        // process (RandomState), so any use in a result-affecting crate must
        // either be replaced by BTreeMap/sorted iteration or carry a
        // reviewed order-insensitivity waiver.
        if result_crate {
            for ty in ["HashMap", "HashSet"] {
                if has_token(code, ty) {
                    match site_waiver(lines, file_idx, idx, "order-insensitive", usage) {
                        WaiverAt::Granted => {}
                        WaiverAt::MissingReason(_) => push(
                            out,
                            relpath,
                            idx,
                            "hash-order",
                            format!("`{ty}` waiver needs a reason: `// lint: order-insensitive — <why>`"),
                        ),
                        WaiverAt::None => push(
                            out,
                            relpath,
                            idx,
                            "hash-order",
                            format!(
                                "`{ty}` in a result-affecting crate: iteration order is \
                                 nondeterministic; use BTreeMap/BTreeSet or sorted iteration, \
                                 or waive with `// lint: order-insensitive — <why>`"
                            ),
                        ),
                    }
                }
            }
        }

        // Rule: wall-clock.  Simulated time is the only time: real-clock
        // reads make replays diverge.  `crates/shims` (vendored criterion)
        // and `crates/bench` (measures real durations) are exempt.
        if krate != "bench" {
            for src in ["Instant::now", "SystemTime"] {
                if code.contains(src) {
                    match site_waiver(lines, file_idx, idx, "wall-clock", usage) {
                        WaiverAt::Granted => {}
                        WaiverAt::MissingReason(_) => push(
                            out,
                            relpath,
                            idx,
                            "wall-clock",
                            format!("`{src}` waiver needs a reason: `// lint: wall-clock — <why>`"),
                        ),
                        WaiverAt::None => push(
                            out,
                            relpath,
                            idx,
                            "wall-clock",
                            format!(
                                "`{src}` outside crates/shims and crates/bench: wall-clock reads \
                                 break replay determinism; thread simulated time through instead, \
                                 or waive with `// lint: wall-clock — <why>`"
                            ),
                        ),
                    }
                }
            }
        }

        // Rule: wrapping.  Wrapping ops are correct in seed mixers (the
        // avalanche *wants* modular arithmetic) and a bug smell everywhere
        // else — a quantity that overflows u64 in scoring code is a logic
        // error that `wrapping_*` would silence.
        if !seed_mix_file && code.contains(".wrapping_") {
            match site_waiver(lines, file_idx, idx, "seed-mix", usage) {
                WaiverAt::Granted => {}
                WaiverAt::MissingReason(_) => push(
                    out,
                    relpath,
                    idx,
                    "wrapping",
                    "wrapping-arithmetic waiver needs a reason: `// lint: seed-mix — <why>`".into(),
                ),
                WaiverAt::None => push(
                    out,
                    relpath,
                    idx,
                    "wrapping",
                    "wrapping arithmetic outside the seed-mixing path: if this derives an RNG \
                     seed, waive with `// lint: seed-mix — <why>`; otherwise use checked math"
                        .into(),
                ),
            }
        }

        // Rule: unsafe-safety.  Every `unsafe` block, fn, or impl must be
        // introduced by a `// SAFETY:` comment, or (for declarations) a
        // doc-comment `# Safety` section.  The upward scan looks through the
        // contiguous run of comment, attribute, and blank lines above the
        // flagged line — a SAFETY comment separated by real code does not
        // count.  No waiver key — the SAFETY comment *is* the waiver.
        if has_token(code, "unsafe") {
            // The comment must *start* with `SAFETY` (after doc-comment `#`
            // header markers) — a passing mention of the word in prose does
            // not document an obligation.
            let is_safety = |l: &Line| {
                let t = l.comment.trim_start_matches(['/', '!', '#', ' ', '\t']);
                t.len() >= 6 && t[..6].eq_ignore_ascii_case("safety")
            };
            let mut documented = lines.get(idx).is_some_and(is_safety);
            let mut j = idx;
            while !documented && j > 0 {
                j -= 1;
                let above = &lines[j];
                if is_safety(above) {
                    documented = true;
                    break;
                }
                // Keep walking only over comment-only, attribute, or blank
                // lines; any other code terminates the introduction.
                let code_above = above.code.trim();
                if !(code_above.is_empty() || code_above.starts_with("#[")) {
                    break;
                }
            }
            if !documented {
                push(
                    out,
                    relpath,
                    idx,
                    "unsafe-safety",
                    "`unsafe` without an introducing `// SAFETY:` comment or `# Safety` doc section"
                        .into(),
                );
            }
        }

        // Rule: narrow-cast.  `as f32` in a scoring/QoE path silently drops
        // precision and can flip near-tie comparisons (the PR 1 controller
        // argmax bug); keep scores in f64 end to end or waive explicitly.
        if scoring && code.contains("as f32") {
            match site_waiver(lines, file_idx, idx, "narrowing-ok", usage) {
                WaiverAt::Granted => {}
                WaiverAt::MissingReason(_) => push(
                    out,
                    relpath,
                    idx,
                    "narrow-cast",
                    "narrowing waiver needs a reason: `// lint: narrowing-ok — <why>`".into(),
                ),
                WaiverAt::None => push(
                    out,
                    relpath,
                    idx,
                    "narrow-cast",
                    "`as f32` in a scoring/QoE path: keep scores in f64 (near-ties flip under \
                     narrowing), or waive with `// lint: narrowing-ok — <why>`"
                        .into(),
                ),
            }
        }
    }
}
