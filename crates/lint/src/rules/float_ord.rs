//! Rule: float-ord — float comparisons in result-affecting crates must be
//! total.
//!
//! `partial_cmp` returns `None` on NaN: `.unwrap()`-ing it panics
//! mid-session, `.unwrap_or(...)` silently reorders, and a `sort_by` built
//! on it disagrees with `f64::total_cmp` on NaN and signed zero.  The repo
//! ships total helpers (`f64::total_cmp`, the controller/loss `argmax`) —
//! result-affecting code routes through those, or carries a waiver arguing
//! that NaN is impossible *and* the ordering cannot reach a result.

use crate::rules::{in_ranges, test_line_ranges};
use crate::symbols::{is_test_path, SymbolTable};
use crate::tokens::Kind;
use crate::{is_result_crate, push, site_waiver, Corpus, Usage, Violation, WaiverAt};

pub(crate) fn check(
    corpus: &Corpus,
    symbols: &SymbolTable,
    usage: &mut Usage,
    out: &mut Vec<Violation>,
) {
    for (file_idx, file) in corpus.files.iter().enumerate() {
        if !is_result_crate(&file.relpath) || is_test_path(&file.relpath) {
            continue;
        }
        let test_ranges = test_line_ranges(corpus, symbols, file_idx);
        for t in &file.tokens {
            if t.kind != Kind::Ident || t.text != "partial_cmp" || in_ranges(&test_ranges, t.line) {
                continue;
            }
            match site_waiver(&file.lines, file_idx, t.line, "float-ord", usage) {
                WaiverAt::Granted => {}
                WaiverAt::MissingReason(_) => push(
                    out,
                    &file.relpath,
                    t.line,
                    "float-ord",
                    "float-ord waiver needs a reason: `// lint: float-ord — <why>`".into(),
                ),
                WaiverAt::None => push(
                    out,
                    &file.relpath,
                    t.line,
                    "float-ord",
                    "`partial_cmp` in a result-affecting crate: NaN yields None (panic or \
                     silent reorder); use `f64::total_cmp`/the repo's argmax helpers, or \
                     waive with `// lint: float-ord — <why>`"
                        .into(),
                ),
            }
        }
    }
}
