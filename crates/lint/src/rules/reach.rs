//! Rules: panic-reach / alloc-reach — call-graph reachability from
//! annotated roots.
//!
//! Starting from every non-test fn annotated `// lint-root: panic-free`
//! (resp. `alloc-free`), a BFS over the workspace call graph collects the
//! reachable closure, and each reachable body is scanned for sinks:
//!
//! - **panic sinks** — panicking macros, `unwrap`/`expect` calls, slice
//!   indexing `x[i]`, and integer `/`·`%` whose divisor is not a nonzero
//!   literal.  `debug_assert*!` bodies are skipped (compiled out of the
//!   release builds that serve sessions), and `/`·`%` on lines with float
//!   evidence (an `f32`/`f64` token or a float literal) are skipped — float
//!   division cannot panic.
//! - **alloc sinks** — allocating macros (`vec!`, `format!`) and the
//!   effect-table call names (`push`, `collect`, `with_capacity`,
//!   `Box::new`, ...).  Effect-table names fire whether or not the call
//!   resolves to a workspace fn: a workspace `resize` that grows a `Vec`
//!   allocates just like the std one, and a waiver documents the
//!   steady-state argument at either end.
//!
//! Every finding carries the root-to-sink call chain as a witness.  Waivers
//! are accepted at the sink line (or the line above), or — for kernels that
//! are bounds-checked by construction — in the fn's intro block, where one
//! waiver covers every sink of that rule in the body.

use crate::callgraph::{child_spans, reach, witness_chain, CallGraph};
use crate::rules::{ALLOC_CALLS, ALLOC_MACROS, ALLOC_QUAL_CALLS, PANIC_CALLS, PANIC_MACROS};
use crate::symbols::{decl_block_lines, RootKind, SymbolTable};
use crate::tokens::{Kind, Tok};
use crate::{push, site_waiver, waiver_on, Corpus, Usage, Violation, WaiverAt};
use std::collections::BTreeSet;

pub(crate) fn check(
    corpus: &Corpus,
    symbols: &SymbolTable,
    graph: &CallGraph,
    usage: &mut Usage,
    out: &mut Vec<Violation>,
) {
    for (kind, rule) in [(RootKind::PanicFree, "panic-reach"), (RootKind::AllocFree, "alloc-reach")]
    {
        let roots: Vec<usize> = symbols
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.is_test && f.is_root(kind))
            .map(|(i, _)| i)
            .collect();
        if roots.is_empty() {
            continue;
        }
        let key = kind.key();
        let parents = reach(graph, &roots);
        for &fn_idx in parents.keys() {
            let f = &symbols.fns[fn_idx];
            if f.is_test {
                continue;
            }
            let Some((start, end)) = f.body else { continue };
            let file = &corpus.files[f.file];
            let sinks = scan_sinks(kind, &file.tokens, start, end, &child_spans(symbols, fn_idx));
            if sinks.is_empty() {
                continue;
            }
            let chain = witness_chain(symbols, corpus, &parents, fn_idx);
            let root = chain
                .first()
                .map(|r| r.split(" (").next().unwrap_or(r).to_string())
                .unwrap_or_default();
            for (line, desc) in sinks {
                match site_waiver(&file.lines, f.file, line, key, usage) {
                    WaiverAt::Granted => continue,
                    WaiverAt::MissingReason(w) => {
                        push(out, &file.relpath, w, rule, needs_reason(key));
                        continue;
                    }
                    WaiverAt::None => {}
                }
                match waiver_on(
                    &file.lines,
                    f.file,
                    decl_block_lines(&file.lines, f.decl_line),
                    key,
                    usage,
                ) {
                    WaiverAt::Granted => continue,
                    WaiverAt::MissingReason(w) => {
                        push(out, &file.relpath, w, rule, needs_reason(key));
                        continue;
                    }
                    WaiverAt::None => {}
                }
                let fix = match kind {
                    RootKind::PanicFree => "make the operation total",
                    RootKind::AllocFree => "hoist the allocation out of the steady state",
                };
                let mut witness = chain.clone();
                witness.push(format!("sink ({}:{})", file.relpath, line + 1));
                out.push(Violation {
                    file: file.relpath.clone(),
                    line: line + 1,
                    rule,
                    msg: format!(
                        "{desc} in `{}`, reachable from {key} root `{root}`: {fix}, or waive \
                         with `// lint: {key} — <why>`",
                        f.qualified()
                    ),
                    witness,
                });
            }
        }
    }
}

fn needs_reason(key: &str) -> String {
    format!("{key} waiver needs a reason: `// lint: {key} — <why>`")
}

/// Identifiers that can precede `[` without it being an indexing expression
/// (`&mut [f64]` is a type, `for x in [a, b]` is an array literal).
const NON_INDEX_PREV: &[&str] = &[
    "mut", "ref", "dyn", "in", "return", "as", "let", "else", "move", "box", "match", "if",
    "while", "loop", "unsafe", "const", "static", "type", "where", "fn", "pub", "use", "impl",
];

/// Scan one fn body's token span for sinks of `kind`, skipping nested-item
/// spans and `debug_assert*!` bodies.  Returns `(0-based line, description)`
/// pairs, deduplicated.
fn scan_sinks(
    kind: RootKind,
    toks: &[Tok],
    start: usize,
    end: usize,
    skip: &[(usize, usize)],
) -> BTreeSet<(usize, String)> {
    let float_lines: BTreeSet<usize> = toks
        .iter()
        .filter(|t| {
            (t.kind == Kind::Ident && (t.text == "f32" || t.text == "f64")) || t.is_float_literal()
        })
        .map(|t| t.line)
        .collect();
    let mut out = BTreeSet::new();
    let mut i = start;
    while i <= end && i < toks.len() {
        if let Some(&(_, child_end)) = skip.iter().find(|&&(s, e)| i >= s && i <= e) {
            i = child_end + 1;
            continue;
        }
        let t = &toks[i];
        // Macro invocation `name!`.
        if t.kind == Kind::Ident && toks.get(i + 1).is_some_and(|n| n.text == "!") {
            let name = t.text.as_str();
            if name.starts_with("debug_assert") {
                i = skip_delimited(toks, i + 2, end);
                continue;
            }
            match kind {
                RootKind::PanicFree if PANIC_MACROS.contains(&name) => {
                    out.insert((t.line, format!("`{name}!`")));
                }
                RootKind::AllocFree if ALLOC_MACROS.contains(&name) => {
                    out.insert((t.line, format!("`{name}!` allocates")));
                }
                _ => {}
            }
            i += 2;
            continue;
        }
        // Call shape `name(` / `name::<T>(`.
        if t.kind == Kind::Ident {
            let mut open = i + 1;
            if toks.get(open).is_some_and(|n| n.text == "::")
                && toks.get(open + 1).is_some_and(|n| n.text == "<")
            {
                let mut depth = 0i32;
                let mut j = open + 1;
                while j <= end && j < toks.len() {
                    match toks[j].text.as_str() {
                        "<" => depth += 1,
                        ">" => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                    if depth == 0 {
                        break;
                    }
                }
                open = j;
            }
            if toks.get(open).is_some_and(|n| n.text == "(") {
                let name = t.text.as_str();
                match kind {
                    RootKind::PanicFree if PANIC_CALLS.contains(&name) => {
                        out.insert((t.line, format!("`.{name}()` panics on None/Err")));
                    }
                    RootKind::AllocFree => {
                        let qual = (i >= 2 && toks[i - 1].text == "::")
                            .then(|| toks[i - 2].clone())
                            .filter(|q| q.kind == Kind::Ident);
                        if ALLOC_CALLS.contains(&name) {
                            out.insert((t.line, format!("`{name}(...)` allocates")));
                        } else if let Some(q) = qual {
                            if ALLOC_QUAL_CALLS.contains(&(q.text.as_str(), name)) {
                                out.insert((
                                    t.line,
                                    format!("`{}::{name}(...)` allocates", q.text),
                                ));
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        if kind == RootKind::PanicFree && t.kind == Kind::Punct {
            match t.text.as_str() {
                "[" if i > 0 => {
                    let prev = &toks[i - 1];
                    let indexing = (prev.kind == Kind::Ident
                        && !NON_INDEX_PREV.contains(&prev.text.as_str()))
                        || prev.text == ")"
                        || prev.text == "]";
                    if indexing {
                        out.insert((t.line, "slice/array indexing `[...]`".to_string()));
                    }
                }
                "/" | "%" => {
                    let mut d = i + 1;
                    if toks.get(d).is_some_and(|n| n.text == "=") {
                        d += 1; // compound assignment `a /= b`
                    }
                    let divisor_safe = toks
                        .get(d)
                        .is_some_and(|n| n.is_float_literal() || n.is_nonzero_int_literal());
                    if !divisor_safe && !float_lines.contains(&t.line) {
                        out.insert((
                            t.line,
                            format!("integer `{}` (divide-by-zero/overflow panics)", t.text),
                        ));
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    out
}

/// Skip a delimited macro body starting at `p` (which should be the opening
/// `(`/`[`/`{`); returns the index just past the matching close.
fn skip_delimited(toks: &[Tok], p: usize, end: usize) -> usize {
    const OPENS: [&str; 3] = ["(", "[", "{"];
    const CLOSES: [&str; 3] = [")", "]", "}"];
    if !toks.get(p).is_some_and(|t| OPENS.contains(&t.text.as_str())) {
        return p;
    }
    let mut depth = 0i32;
    let mut j = p;
    while j <= end && j < toks.len() {
        let s = toks[j].text.as_str();
        if OPENS.contains(&s) {
            depth += 1;
        } else if CLOSES.contains(&s) {
            depth -= 1;
        }
        j += 1;
        if depth == 0 {
            break;
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;

    fn run(src: &str) -> Vec<Violation> {
        let corpus =
            Corpus::from_sources(vec![("crates/core/src/controller.rs".into(), src.into())]);
        let symbols = SymbolTable::build(&corpus);
        let graph = CallGraph::build(&corpus, &symbols);
        let mut usage = Usage::default();
        let mut out = Vec::new();
        check(&corpus, &symbols, &graph, &mut usage, &mut out);
        out
    }

    #[test]
    fn panic_sink_two_calls_down_carries_a_witness() {
        let v = run("// lint-root: panic-free\n\
             fn root(x: Option<u8>) { mid(x); }\n\
             fn mid(x: Option<u8>) { leaf(x); }\n\
             fn leaf(x: Option<u8>) { x.unwrap(); }\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "panic-reach");
        assert_eq!(v[0].line, 4);
        assert!(v[0].msg.contains("reachable from panic-free root `root`"), "{}", v[0].msg);
        assert_eq!(v[0].witness.len(), 4, "root, mid, leaf, sink: {:?}", v[0].witness);
        assert!(v[0].witness[3].contains("controller.rs:4"));
    }

    #[test]
    fn unreachable_sinks_are_not_flagged() {
        let v = run("// lint-root: panic-free\n\
             fn root() {}\n\
             fn elsewhere(x: Option<u8>) { x.unwrap(); }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn debug_assert_bodies_are_exempt() {
        let v = run("// lint-root: panic-free\n\
             fn root(xs: &[f64], n: usize) {\n\
                 debug_assert!(xs[0] > 0.0 && n % 2 == 0);\n\
                 debug_assert_eq!(xs.len(), n);\n\
             }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn index_and_integer_division_are_sinks() {
        let v = run("// lint-root: panic-free\n\
             fn root(xs: &[f64], n: usize, k: usize) -> f64 {\n\
                 let half = n / 2;\n\
                 let m = n / k;\n\
                 xs[m + half]\n\
             }\n");
        let lines: Vec<usize> = v.iter().map(|v| v.line).collect();
        assert_eq!(lines, [4, 5], "literal divisor clean, `/ k` and `xs[...]` flagged: {v:?}");
    }

    #[test]
    fn float_division_is_not_a_panic_sink() {
        let v = run("// lint-root: panic-free\n\
             fn root(a: f64, b: f64) -> f64 { let x: f64 = a / b; x / 2.0 }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn alloc_sinks_fire_by_effect_table_and_qualified_path() {
        let v = run("// lint-root: alloc-free\n\
             fn root(out: &mut Vec<f64>) {\n\
                 out.push(1.0);\n\
                 let b = Box::new(2.0);\n\
                 let s = format!(\"x\");\n\
             }\n");
        let descs: Vec<&str> = v.iter().map(|v| v.msg.split(" in ").next().unwrap()).collect();
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(descs[0].contains("push"), "{descs:?}");
        assert!(descs[1].contains("Box::new"), "{descs:?}");
        assert!(descs[2].contains("format!"), "{descs:?}");
    }

    #[test]
    fn site_and_fn_level_waivers_suppress() {
        let v = run("// lint-root: panic-free\n\
             fn root(x: Option<u8>, xs: &[u8]) {\n\
                 // lint: panic-free — checked is_some() on the line above in real code\n\
                 x.unwrap();\n\
                 kernel(xs);\n\
             }\n\
             // Bounds checked by construction: one waiver for the whole body.\n\
             // lint: panic-free — all indices derived from xs.len()\n\
             fn kernel(xs: &[u8]) { let a = xs[0]; let b = xs[1]; }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn reasonless_waiver_is_flagged_not_honoured() {
        let v = run("// lint-root: panic-free\n\
             // lint: panic-free\n\
             fn root(x: Option<u8>) { x.unwrap(); }\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("needs a reason"));
    }
}
