//! Rule: atomic-ordering — every atomic memory ordering carries a
//! justification comment.
//!
//! An `Ordering::Relaxed` is a correctness claim ("no cross-thread data
//! depends on this load seeing the latest store"); an undocumented one is
//! indistinguishable from an unexamined one.  The rule matches the token
//! sequence `Ordering :: <variant>` for the five atomic variants only, so
//! `cmp::Ordering::Less` never trips it, and skips test functions (test
//! threads may claim work however they like).

use crate::rules::{in_ranges, test_line_ranges, ATOMIC_ORDERINGS};
use crate::symbols::{is_test_path, SymbolTable};
use crate::tokens::Kind;
use crate::{crate_of, push, site_waiver, Corpus, Usage, Violation, WaiverAt};

pub(crate) fn check(
    corpus: &Corpus,
    symbols: &SymbolTable,
    usage: &mut Usage,
    out: &mut Vec<Violation>,
) {
    for (file_idx, file) in corpus.files.iter().enumerate() {
        if crate_of(&file.relpath).is_none() || is_test_path(&file.relpath) {
            continue;
        }
        let test_ranges = test_line_ranges(corpus, symbols, file_idx);
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if toks[i].kind != Kind::Ident || toks[i].text != "Ordering" {
                continue;
            }
            let Some(variant) = toks
                .get(i + 1)
                .filter(|t| t.text == "::")
                .and_then(|_| toks.get(i + 2))
                .filter(|t| ATOMIC_ORDERINGS.contains(&t.text.as_str()))
            else {
                continue;
            };
            let line = variant.line;
            if in_ranges(&test_ranges, line) {
                continue;
            }
            match site_waiver(&file.lines, file_idx, line, "atomic-ordering", usage) {
                WaiverAt::Granted => {}
                WaiverAt::MissingReason(_) => push(
                    out,
                    &file.relpath,
                    line,
                    "atomic-ordering",
                    "atomic-ordering waiver needs a reason: `// lint: atomic-ordering — <why>`"
                        .into(),
                ),
                WaiverAt::None => push(
                    out,
                    &file.relpath,
                    line,
                    "atomic-ordering",
                    format!(
                        "`Ordering::{}` without a justification: state why this ordering is \
                         sufficient with `// lint: atomic-ordering — <why>`",
                        variant.text
                    ),
                ),
            }
        }
    }
}
