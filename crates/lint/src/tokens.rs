//! Token stream over the code channels produced by [`crate::split_source`].
//!
//! The lexer below is the foundation the symbol table and call graph build
//! on: it turns each line's *code* channel (comments routed aside, literals
//! blanked) into a flat vector of tokens that remember their line, so every
//! downstream finding can point back at a `file:line` and consult the
//! comment channel for waivers.  It is deliberately small — identifiers,
//! numbers, lifetimes, and punctuation (with the handful of two-character
//! operators that matter for item parsing joined) — because the rules are
//! lexical: they need token boundaries and positions, not a full grammar.

use crate::Line;

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`fn`, `plan_with`, `Matrix`, ...).
    Ident,
    /// Numeric literal (`42`, `1.0e-3`, `0x1F`, `2.0f32`, ...).
    Num,
    /// Punctuation; multi-character for `::`, `->`, `=>`, and `..`.
    Punct,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// One token with its 0-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub text: String,
    pub line: usize,
    pub kind: Kind,
}

impl Tok {
    /// Is this numeric literal a float (`1.0`, `1e-3`, `2f64`) rather than an
    /// integer?  Hex literals are never floats (`0x1E` is not an exponent).
    pub fn is_float_literal(&self) -> bool {
        if self.kind != Kind::Num {
            return false;
        }
        let t = &self.text;
        if t.starts_with("0x") || t.starts_with("0X") {
            return false;
        }
        t.contains('.')
            || t.contains('e')
            || t.contains('E')
            || t.ends_with("f32")
            || t.ends_with("f64")
    }

    /// Is this an integer literal with a nonzero value (a division by it can
    /// never panic)?
    pub fn is_nonzero_int_literal(&self) -> bool {
        self.kind == Kind::Num
            && !self.is_float_literal()
            && self.text.chars().any(|c| c.is_ascii_digit() && c != '0')
    }
}

/// Two-character punctuation joined into single tokens.  `::` is load-bearing
/// for path-call parsing; `->`/`=>`/`..` keep `>` and `.` from confusing the
/// signature scanner and the method-call pattern.
const JOINED: &[&str] = &["::", "->", "=>", ".."];

/// Tokenize the code channels of pre-split source lines.
pub fn tokenize(lines: &[Line]) -> Vec<Tok> {
    let mut out = Vec::new();
    for (ln, line) in lines.iter().enumerate() {
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Tok {
                    text: chars[start..i].iter().collect(),
                    line: ln,
                    kind: Kind::Ident,
                });
                continue;
            }
            if c.is_ascii_digit() {
                let start = i;
                i += 1;
                while i < chars.len() {
                    let d = chars[i];
                    if d.is_alphanumeric() || d == '_' {
                        i += 1;
                    } else if d == '.'
                        && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                        && !chars[start..i].iter().any(|&p| p == 'x' || p == 'X')
                    {
                        // `1.5` continues the number; `1..n` does not.
                        i += 1;
                    } else if (d == '+' || d == '-')
                        && matches!(chars[i - 1], 'e' | 'E')
                        && !chars[start..i].iter().any(|&p| p == 'x' || p == 'X')
                        && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                    {
                        // Signed exponent: `1e-3`.
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(Tok { text: chars[start..i].iter().collect(), line: ln, kind: Kind::Num });
                continue;
            }
            if c == '\'' && chars.get(i + 1).is_some_and(|n| n.is_alphabetic() || *n == '_') {
                let start = i;
                i += 1;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Tok {
                    text: chars[start..i].iter().collect(),
                    line: ln,
                    kind: Kind::Lifetime,
                });
                continue;
            }
            let pair: String = chars[i..(i + 2).min(chars.len())].iter().collect();
            if JOINED.contains(&pair.as_str()) {
                out.push(Tok { text: pair, line: ln, kind: Kind::Punct });
                i += 2;
                continue;
            }
            out.push(Tok { text: c.to_string(), line: ln, kind: Kind::Punct });
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split_source;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(&split_source(src))
    }

    fn texts(src: &str) -> Vec<String> {
        toks(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_numbers_and_puncts() {
        assert_eq!(
            texts("let x = a.len() / 2;"),
            ["let", "x", "=", "a", ".", "len", "(", ")", "/", "2", ";"]
        );
    }

    #[test]
    fn joined_puncts_and_paths() {
        assert_eq!(texts("Vec::<u8>::new()"), ["Vec", "::", "<", "u8", ">", "::", "new", "(", ")"]);
        assert_eq!(texts("a -> b => c .. d"), ["a", "->", "b", "=>", "c", "..", "d"]);
    }

    #[test]
    fn numeric_literal_shapes() {
        let t = toks("1.5 1e-3 0x1F 2.0f32 1..n 7");
        let nums: Vec<&Tok> = t.iter().filter(|t| t.kind == Kind::Num).collect();
        assert_eq!(
            nums.iter().map(|t| t.text.as_str()).collect::<Vec<_>>(),
            ["1.5", "1e-3", "0x1F", "2.0f32", "1", "7"]
        );
        assert!(nums[0].is_float_literal());
        assert!(nums[1].is_float_literal());
        assert!(!nums[2].is_float_literal(), "hex E is not an exponent");
        assert!(nums[3].is_float_literal());
        assert!(!nums[4].is_float_literal(), "`1..n` keeps 1 integral");
        assert!(nums[5].is_nonzero_int_literal());
        assert!(!toks("0")[0].is_nonzero_int_literal());
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let t = toks("fn f<'a>(x: &'a str) {}");
        assert!(t.iter().any(|t| t.kind == Kind::Lifetime && t.text == "'a"));
    }

    #[test]
    fn lines_are_tracked() {
        let t = toks("a\nb\n\nc\n");
        let lines: Vec<usize> = t.iter().map(|t| t.line).collect();
        assert_eq!(lines, [0, 1, 3]);
    }

    #[test]
    fn comments_and_strings_do_not_tokenize() {
        let t = texts("call(\"unwrap()\"); // unwrap()");
        assert!(!t.contains(&"unwrap".to_string()));
    }
}
