//! `cargo run -p puffer-lint` — scan the workspace and report violations.
//!
//! ```text
//! puffer-lint                   human-readable report (witness chains indented)
//! puffer-lint --format json     machine-readable report on stdout
//! puffer-lint --explain <rule>  print the rationale for one rule id
//! ```
//!
//! Exit status 0 when clean, 1 when any rule fires, 2 on usage errors; CI
//! runs this alongside the `workspace_is_clean` test so either entry point
//! gates a merge.

use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: puffer-lint [--format human|json] [--explain <rule>]");
    eprintln!(
        "rules: {}",
        puffer_lint::RULES.iter().map(|(id, _)| *id).collect::<Vec<_>>().join(", ")
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut format = "human";
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--explain" => {
                let Some(rule) = args.get(i + 1) else { return usage() };
                match puffer_lint::explain(rule) {
                    Some(text) => {
                        println!("{rule}\n\n{text}");
                        return ExitCode::SUCCESS;
                    }
                    None => {
                        eprintln!("puffer-lint: unknown rule `{rule}`");
                        return usage();
                    }
                }
            }
            "--format" => {
                match args.get(i + 1).map(String::as_str) {
                    Some("human") => format = "human",
                    Some("json") => format = "json",
                    _ => return usage(),
                }
                i += 2;
            }
            _ => return usage(),
        }
    }

    let root = puffer_lint::workspace_root();
    let violations = puffer_lint::scan_workspace(&root);
    if format == "json" {
        print!("{}", puffer_lint::to_json(&violations));
        return if violations.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }
    if violations.is_empty() {
        println!("puffer-lint: workspace clean ({})", root.display());
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        eprintln!("{v}");
        for hop in &v.witness {
            eprintln!("    ↳ {hop}");
        }
    }
    eprintln!("puffer-lint: {} violation(s)", violations.len());
    ExitCode::FAILURE
}
