//! `cargo run -p puffer-lint` — scan the workspace and report violations.
//!
//! Exit status 0 when clean, 1 when any rule fires; CI runs this alongside
//! the `workspace_is_clean` test so either entry point gates a merge.

use std::process::ExitCode;

fn main() -> ExitCode {
    let root = puffer_lint::workspace_root();
    let violations = puffer_lint::scan_workspace(&root);
    if violations.is_empty() {
        println!("puffer-lint: workspace clean ({})", root.display());
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        eprintln!("{v}");
    }
    eprintln!("puffer-lint: {} violation(s)", violations.len());
    ExitCode::FAILURE
}
