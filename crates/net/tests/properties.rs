//! Property-based tests for the TCP model: causality, conservation, and
//! monotonicity over arbitrary paths and workloads.
//!
//! Skipped under Miri: hundreds of proptest cases through the full
//! simulation are minutes-long in an interpreter, and the unsafe code
//! Miri exists to check is exercised by the faster unit tests.
#![cfg(not(miri))]

use proptest::prelude::*;
use puffer_net::{CongestionControl, Connection};
use puffer_trace::trace::{Epoch, RateTrace};
use puffer_trace::{PufferLikeProcess, RateProcess};
use rand::SeedableRng;

fn arb_link() -> impl Strategy<Value = RateTrace> {
    prop::collection::vec((0.2f64..4.0, 1e4f64..4e6), 1..8).prop_map(|v| {
        RateTrace::new(
            &v.into_iter().map(|(duration, rate)| Epoch { duration, rate }).collect::<Vec<_>>(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 150, ..ProptestConfig::default() })]

    #[test]
    fn transfers_are_causal_and_positive(
        link in arb_link(),
        rtt in 0.005f64..0.3,
        queue in 2e4f64..1e6,
        sizes in prop::collection::vec(2e3f64..6e6, 1..12),
        gaps in prop::collection::vec(0.0f64..5.0, 12),
        cubic in any::<bool>(),
    ) {
        let cc = if cubic { CongestionControl::Cubic } else { CongestionControl::Bbr };
        let mut conn = Connection::new(link, rtt, queue, cc, 0.0);
        let mut now = 0.0f64;
        let mut total = 0.0;
        for (i, &size) in sizes.iter().enumerate() {
            now = conn.last_completion().max(now) + gaps[i];
            let t = conn.send(now, size);
            prop_assert!(t.completion > t.start, "completion after start");
            prop_assert!(t.transmission_time() >= rtt / 2.0,
                "cannot beat the speed of light: {} < {}", t.transmission_time(), rtt / 2.0);
            prop_assert!(t.throughput().is_finite() && t.throughput() > 0.0);
            total += size;
        }
        prop_assert!((conn.bytes_sent() - total).abs() < 1e-6);
    }

    #[test]
    fn tcp_info_always_sane(
        link in arb_link(),
        rtt in 0.005f64..0.3,
        sizes in prop::collection::vec(1e4f64..3e6, 1..10),
    ) {
        let mut conn = Connection::new(link, rtt, 3e5, CongestionControl::Bbr, 0.0);
        for &size in &sizes {
            let now = conn.last_completion() + 0.8;
            let info = conn.tcp_info(now);
            prop_assert!(info.cwnd >= 1.0 && info.cwnd.is_finite());
            prop_assert!(info.in_flight >= 0.0 && info.in_flight.is_finite());
            prop_assert!((info.min_rtt - rtt).abs() < 1e-12, "min_rtt is propagation");
            prop_assert!(info.rtt >= info.min_rtt * 0.99, "srtt >= min_rtt");
            prop_assert!(info.delivery_rate > 0.0 && info.delivery_rate.is_finite());
            let _ = conn.send(now, size);
        }
    }

    #[test]
    fn bigger_chunks_never_finish_sooner(
        seed in 0u64..3_000,
        rtt in 0.01f64..0.15,
        small in 1e4f64..5e5,
        factor in 1.1f64..8.0,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let trace = PufferLikeProcess::new(6e5, 0.4).sample_trace(120.0, &mut rng);
        let t_small = {
            let mut c = Connection::new(trace.clone(), rtt, 2e5, CongestionControl::Bbr, 0.0);
            c.send(0.0, small).transmission_time()
        };
        let t_big = {
            let mut c = Connection::new(trace, rtt, 2e5, CongestionControl::Bbr, 0.0);
            c.send(0.0, small * factor).transmission_time()
        };
        prop_assert!(t_big >= t_small - 1e-9, "big {t_big} vs small {t_small}");
    }

    #[test]
    fn throughput_bounded_by_peak_link_rate(
        link in arb_link(),
        size in 1e5f64..8e6,
    ) {
        let peak = link.epochs().map(|(_, r)| r).fold(0.0, f64::max);
        let mut conn = Connection::new(link, 0.02, 3e5, CongestionControl::Bbr, 0.0);
        // Warm up so the window isn't the limiter, then measure.
        let _ = conn.send(0.0, 2e6);
        let t = conn.send(conn.last_completion(), size);
        prop_assert!(t.throughput() <= peak * 1.01 + 1.0,
            "goodput {} cannot exceed the bottleneck peak {}", t.throughput(), peak);
    }
}
