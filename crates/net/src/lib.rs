//! # puffer-net — the transport substrate
//!
//! Puffer serves video over a WebSocket (TLS/TCP) from a datacenter server;
//! each serving daemon is "configured with a different TCP congestion control
//! (for the primary analysis, we used BBR)" (§3.2), and the sender-side
//! kernel's `tcp_info` structure is logged with every chunk and fed to the
//! TTP (§4.2, Appendix B).  This crate replaces the Linux kernel + real
//! Internet path with an analytic, deterministic flow model driven by a
//! [`puffer_trace::RateTrace`]:
//!
//! * [`Connection`] simulates one long-lived TCP connection carrying video
//!   chunks: slow start, congestion avoidance, slow-start restart after idle
//!   periods, window- vs. link-limited phases, bottleneck queueing, and a
//!   BBR-flavoured or CUBIC-flavoured congestion controller
//!   ([`CongestionControl`]).
//! * [`TcpInfo`] mirrors the fields Puffer records from the kernel — `cwnd`,
//!   `in_flight`, `min_rtt`, `rtt`, `delivery_rate` (Appendix B) — synthesized
//!   from the model state at the moment a chunk is sent.
//!
//! Two transport behaviours matter to the paper and are preserved:
//!
//! 1. **Transmission time is not linear in filesize** (§4.6 "it is well known
//!    ... that transmission time does not scale linearly with filesize"):
//!    every transfer pays an RTT floor, small transfers are window-limited
//!    (slow start / slow-start restart after idle), and only large transfers
//!    reach the link rate.  This is what the TTP exploits over a throughput
//!    predictor.
//! 2. **Sender-side statistics carry predictive signal**, especially on cold
//!    start (Fig. 9): the handshake RTT correlates with the path class, and
//!    `delivery_rate` tracks the current regime of the link.

pub mod tcp;

pub use tcp::{CongestionControl, Connection, TcpInfo, Transfer};

/// TCP maximum segment size in bytes (Ethernet MTU minus headers, rounded the
/// way mahimahi counts it).
pub const MSS: f64 = 1500.0;

/// Initial congestion window in packets (Linux default, RFC 6928).
pub const INIT_CWND: f64 = 10.0;
