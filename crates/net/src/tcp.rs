//! Round-based TCP flow model over a trace-driven bottleneck.
//!
//! The model advances in RTT-sized "rounds" while the flow is window-limited
//! and switches to a link-limited integral once the window covers the
//! bandwidth-delay product, which is both fast (O(rounds + log trace) per
//! chunk) and captures the dynamics ABR cares about: slow start, slow-start
//! restart after idle, queueing delay under loss-based control, and regime
//! changes mid-transfer.

use crate::{INIT_CWND, MSS};
use puffer_trace::RateTrace;

/// Which congestion controller shapes the flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CongestionControl {
    /// Model-based: tracks ~2× BDP of inflight data, keeps queues short.
    /// The primary Puffer experiment used BBR (§3.2).
    Bbr,
    /// Loss-based: fills the bottleneck buffer until overflow, multiplicative
    /// decrease on loss (β = 0.7 as in CUBIC).
    Cubic,
}

/// Sender-side TCP statistics, mirroring the `tcp_info` fields Puffer logs
/// with every `video_sent` datum (Appendix B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcpInfo {
    /// Congestion window, packets (`tcpi_snd_cwnd`).
    pub cwnd: f64,
    /// Unacknowledged packets in flight (`tcpi_unacked` − ...).
    pub in_flight: f64,
    /// Minimum RTT observed, seconds (`tcpi_min_rtt`).
    pub min_rtt: f64,
    /// Smoothed RTT estimate, seconds (`tcpi_rtt`).
    pub rtt: f64,
    /// Delivery-rate estimate, bytes/second (`tcpi_delivery_rate`).
    pub delivery_rate: f64,
}

/// The outcome of sending one chunk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transfer {
    /// When the server started writing the chunk.
    pub start: f64,
    /// When the last byte was acknowledged.
    pub completion: f64,
    /// Bytes transferred.
    pub bytes: f64,
}

impl Transfer {
    /// Send-to-ack transmission time in seconds — the quantity the TTP
    /// predicts (§4.2).
    pub fn transmission_time(&self) -> f64 {
        self.completion - self.start
    }

    /// Achieved goodput in bytes/second.
    pub fn throughput(&self) -> f64 {
        self.bytes / self.transmission_time()
    }
}

/// One server→client TCP connection carrying a video session.
///
/// Channel changes reuse the connection ("Users can switch channels without
/// breaking their TCP connection", §3.2), so state like `min_rtt` and the
/// congestion window persists across streams within a session.
#[derive(Debug, Clone)]
pub struct Connection {
    trace: RateTrace,
    cc: CongestionControl,
    /// Propagation RTT of the path, seconds.
    prop_rtt: f64,
    /// Bottleneck queue capacity in bytes.
    queue_capacity: f64,

    // --- congestion state ---
    cwnd: f64,
    ssthresh: f64,
    srtt: f64,
    delivery_rate: f64,
    /// Completion time of the most recent transfer.
    last_completion: f64,
    /// Window size (packets) in the final round of the last transfer.
    last_window_pkts: f64,
    /// Total bytes carried over the connection's lifetime.
    bytes_sent: f64,
}

/// EWMA gain for the smoothed RTT (RFC 6298 uses 1/8).
const SRTT_GAIN: f64 = 0.125;
/// EWMA gain for the delivery-rate estimate.
const RATE_GAIN: f64 = 0.3;

impl Connection {
    /// Open a connection at time `now` over the given path.
    ///
    /// `queue_capacity` is the bottleneck buffer in bytes;
    /// `prop_rtt` the propagation round-trip in seconds.
    pub fn new(
        trace: RateTrace,
        prop_rtt: f64,
        queue_capacity: f64,
        cc: CongestionControl,
        now: f64,
    ) -> Self {
        assert!(prop_rtt > 0.0, "propagation RTT must be positive");
        assert!(queue_capacity >= MSS, "queue must hold at least one packet");
        Connection {
            trace,
            cc,
            prop_rtt,
            queue_capacity,
            cwnd: INIT_CWND,
            ssthresh: f64::INFINITY,
            // The handshake measures the propagation RTT.
            srtt: prop_rtt,
            // Cold start: the kernel has only the implicit initial-window
            // estimate.  Deliberately weak — the interesting signal at cold
            // start is the RTT, which correlates with the path class (Fig. 9).
            delivery_rate: INIT_CWND * MSS / prop_rtt,
            last_completion: now,
            last_window_pkts: 0.0,
            bytes_sent: 0.0,
        }
    }

    pub fn congestion_control(&self) -> CongestionControl {
        self.cc
    }

    pub fn bytes_sent(&self) -> f64 {
        self.bytes_sent
    }

    /// Completion time of the most recent transfer (connection-creation time
    /// if nothing has been sent yet).  The next send must not start earlier.
    pub fn last_completion(&self) -> f64 {
        self.last_completion
    }

    /// Instantaneous bottleneck rate at time `t` (bytes/s) — visible to the
    /// simulator, *not* to ABR algorithms (they see only [`TcpInfo`]).
    pub fn link_rate_at(&self, t: f64) -> f64 {
        self.trace.rate_at(t)
    }

    /// Retransmission-timeout-scale idle threshold after which the kernel
    /// performs slow-start restart.
    fn idle_threshold(&self) -> f64 {
        (2.0 * self.srtt).max(0.25)
    }

    /// Sender-side statistics as of time `now` (logged with `video_sent`).
    pub fn tcp_info(&self, now: f64) -> TcpInfo {
        // Packets still unacked decay over roughly one RTT after the last
        // transfer completes; back-to-back sends (low client buffer) keep
        // in_flight high, long idle gaps drain it to zero.
        let gap = (now - self.last_completion).max(0.0);
        let in_flight = self.last_window_pkts * (-gap / self.srtt.max(1e-3)).exp();
        TcpInfo {
            cwnd: self.cwnd,
            in_flight,
            min_rtt: self.prop_rtt,
            rtt: self.srtt,
            delivery_rate: self.delivery_rate,
        }
    }

    /// Standing queue delay for a given window, rate, and controller.
    fn queue_delay(&self, window_bytes: f64, link_rate: f64) -> f64 {
        match self.cc {
            CongestionControl::Bbr => {
                // BBR keeps queues short; small residual proportional to rtt.
                0.1 * self.prop_rtt
            }
            CongestionControl::Cubic => {
                let bdp = link_rate * self.prop_rtt;
                let queued = (window_bytes - bdp).clamp(0.0, self.queue_capacity);
                if link_rate > 0.0 {
                    queued / link_rate
                } else {
                    0.0
                }
            }
        }
    }

    /// Grow/shrink the window at the end of a round.
    fn update_cwnd(&mut self, link_rate: f64) {
        let bdp_pkts = (link_rate * self.prop_rtt / MSS).max(1.0);
        match self.cc {
            CongestionControl::Bbr => {
                let target = 2.0 * bdp_pkts;
                if self.cwnd < target {
                    // Startup: double per round, like slow start.
                    self.cwnd = (self.cwnd * 2.0).min(target.max(INIT_CWND));
                } else {
                    // ProbeBW-ish: relax toward the target.
                    self.cwnd = 0.75 * self.cwnd + 0.25 * target;
                }
                self.cwnd = self.cwnd.max(4.0);
            }
            CongestionControl::Cubic => {
                let overflow_pkts = bdp_pkts + self.queue_capacity / MSS;
                if self.cwnd >= overflow_pkts {
                    // Bottleneck buffer overflowed: multiplicative decrease.
                    self.cwnd = (self.cwnd * 0.7).max(2.0);
                    self.ssthresh = self.cwnd;
                } else if self.cwnd < self.ssthresh {
                    self.cwnd = (self.cwnd * 2.0).min(overflow_pkts);
                } else {
                    // Congestion avoidance: roughly +1 MSS per RTT, slightly
                    // superlinear to stand in for CUBIC's convex probe.
                    self.cwnd += 1.0 + 0.02 * self.cwnd;
                }
            }
        }
    }

    /// Fold one round's measurements into srtt / delivery_rate.
    fn update_estimates(&mut self, round_rtt: f64, bytes: f64, elapsed: f64) {
        self.srtt = (1.0 - SRTT_GAIN) * self.srtt + SRTT_GAIN * round_rtt;
        if elapsed > 0.0 {
            let sample = bytes / elapsed;
            self.delivery_rate = (1.0 - RATE_GAIN) * self.delivery_rate + RATE_GAIN * sample;
        }
    }

    /// Send `bytes` starting at time `now`; returns the completed transfer.
    ///
    /// `now` must not precede the previous transfer's completion (the video
    /// server writes chunks sequentially over the WebSocket).
    pub fn send(&mut self, now: f64, bytes: f64) -> Transfer {
        assert!(bytes > 0.0 && bytes.is_finite(), "chunk must have positive size");
        assert!(
            now >= self.last_completion - 1e-9,
            "sends must be sequential: now={now} < last_completion={}",
            self.last_completion
        );

        // Slow-start restart after idle (RFC 2861): the kernel collapses the
        // window when the connection has been quiet.  This is a major source
        // of filesize⇄throughput nonlinearity for streaming workloads where
        // a full client buffer means ~2 s gaps between chunks.
        if now - self.last_completion > self.idle_threshold() {
            self.ssthresh = (self.cwnd / 2.0).max(2.0);
            self.cwnd = INIT_CWND.min(self.cwnd);
        }

        let mut remaining = bytes;
        let mut t = now;
        loop {
            let link_rate = self.trace.rate_at(t).max(1.0);
            let window_bytes = self.cwnd * MSS;
            let qdelay = self.queue_delay(window_bytes, link_rate);

            if window_bytes >= remaining {
                // Final (possibly only) round: the window covers the rest, so
                // completion is limited by the link draining `remaining`
                // bytes, plus the return path for the final ack.
                let drained_at = self.trace.advance(t, remaining);
                let completion = drained_at + self.prop_rtt / 2.0 + qdelay;
                let round_rtt = (completion - t).max(self.prop_rtt);
                self.update_estimates(round_rtt, remaining, completion - t);
                self.update_cwnd(link_rate);
                self.last_window_pkts = remaining / MSS;
                self.last_completion = completion;
                self.bytes_sent += bytes;
                return Transfer { start: now, completion, bytes };
            }

            // Window-limited round: put a full window on the wire, wait for
            // acks.  The round lasts at least an RTT (+ queueing) and at
            // least as long as the link needs to drain the window.
            let drained_at = self.trace.advance(t, window_bytes);
            let drain_time = drained_at - t;
            let round_time = drain_time.max(self.prop_rtt + qdelay);
            remaining -= window_bytes;
            self.update_estimates(round_time, window_bytes, round_time);
            self.update_cwnd(link_rate);
            self.last_window_pkts = self.cwnd;
            t += round_time;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_trace::trace::Epoch;
    use puffer_trace::MBPS;

    fn fast_link() -> RateTrace {
        RateTrace::constant(6.0 * MBPS, 60.0)
    }

    fn conn(trace: RateTrace, cc: CongestionControl) -> Connection {
        // 40 ms RTT, 250 kB queue.
        Connection::new(trace, 0.040, 250_000.0, cc, 0.0)
    }

    #[test]
    fn large_transfer_approaches_link_rate() {
        let mut c = conn(fast_link(), CongestionControl::Bbr);
        // Warm up the window.
        let _ = c.send(0.0, 2_000_000.0);
        let start = c.tcp_info(10.0); // keep borrow checker happy
        let _ = start;
        let t = c.send(c.last_completion, 6_000_000.0);
        let tput = t.throughput();
        assert!(
            tput > 0.75 * 6.0 * MBPS,
            "large transfer got {:.2} of link rate",
            tput / (6.0 * MBPS)
        );
    }

    #[test]
    fn small_transfer_pays_rtt_floor() {
        let mut c = conn(fast_link(), CongestionControl::Bbr);
        let t = c.send(0.0, 5_000.0);
        assert!(t.transmission_time() >= 0.020, "sub-RTT completion impossible");
        // Effective throughput far below link rate.
        assert!(t.throughput() < 0.5 * 6.0 * MBPS);
    }

    #[test]
    fn throughput_grows_with_filesize() {
        // The core nonlinearity the TTP learns (§4.6): per-byte speed rises
        // with transfer size.  Use fresh connections so each starts cold.
        let sizes = [20_000.0, 100_000.0, 500_000.0, 2_500_000.0];
        let mut tputs = Vec::new();
        for &s in &sizes {
            let mut c = conn(fast_link(), CongestionControl::Bbr);
            let t = c.send(0.0, s);
            tputs.push(t.throughput());
        }
        for w in tputs.windows(2) {
            assert!(w[1] > w[0], "throughput must increase with size: {tputs:?}");
        }
    }

    #[test]
    fn slow_start_restart_penalizes_idle_gaps() {
        // Same chunk size, same link: a chunk sent after a long idle gap
        // must take longer than one sent back-to-back.  Use a fast link so
        // the window-limited slow-start rounds dominate the transfer.
        let link = || RateTrace::constant(25.0 * MBPS, 60.0);
        let mut warm = conn(link(), CongestionControl::Bbr);
        let _ = warm.send(0.0, 2_000_000.0);
        let t_back_to_back = warm.send(warm.last_completion, 300_000.0);

        let mut idle = conn(link(), CongestionControl::Bbr);
        let _ = idle.send(0.0, 2_000_000.0);
        let gap_start = idle.last_completion + 10.0; // way past idle threshold
        let t_after_idle = idle.send(gap_start, 300_000.0);

        assert!(
            t_after_idle.transmission_time() > 1.3 * t_back_to_back.transmission_time(),
            "idle {:.3}s vs warm {:.3}s",
            t_after_idle.transmission_time(),
            t_back_to_back.transmission_time()
        );
    }

    #[test]
    fn outage_mid_transfer_stalls_completion() {
        let trace = RateTrace::new(&[
            Epoch { duration: 1.0, rate: 4.0 * MBPS },
            Epoch { duration: 8.0, rate: 0.01 * MBPS },
            Epoch { duration: 60.0, rate: 4.0 * MBPS },
        ]);
        let mut c = conn(trace, CongestionControl::Bbr);
        // 2 MB: needs ~0.5 s at 4 Mbps... but the outage interrupts.
        let t = c.send(0.8, 2_000_000.0);
        assert!(t.transmission_time() > 5.0, "outage must delay: {:.2}s", t.transmission_time());
    }

    #[test]
    fn cubic_queues_more_than_bbr() {
        let run = |cc| {
            let mut c = conn(fast_link(), cc);
            for _ in 0..10 {
                let _ = c.send(c.last_completion, 1_000_000.0);
            }
            c.tcp_info(c.last_completion).rtt
        };
        let bbr_rtt = run(CongestionControl::Bbr);
        let cubic_rtt = run(CongestionControl::Cubic);
        assert!(
            cubic_rtt > bbr_rtt,
            "loss-based control must build queues: cubic {cubic_rtt} vs bbr {bbr_rtt}"
        );
    }

    #[test]
    fn tcp_info_fields_sane_on_cold_start() {
        let c = conn(fast_link(), CongestionControl::Bbr);
        let info = c.tcp_info(0.0);
        assert_eq!(info.cwnd, INIT_CWND);
        assert_eq!(info.min_rtt, 0.040);
        assert_eq!(info.rtt, 0.040);
        assert!(info.in_flight.abs() < 1e-9);
        assert!(info.delivery_rate > 0.0);
    }

    #[test]
    fn delivery_rate_tracks_link_after_transfers() {
        let mut c = conn(fast_link(), CongestionControl::Bbr);
        for _ in 0..8 {
            let _ = c.send(c.last_completion, 1_500_000.0);
        }
        let rate = c.tcp_info(c.last_completion).delivery_rate;
        assert!(
            (rate / (6.0 * MBPS) - 1.0).abs() < 0.5,
            "delivery_rate {:.0} vs link {:.0}",
            rate,
            6.0 * MBPS
        );
    }

    #[test]
    fn in_flight_decays_with_idle_time() {
        let mut c = conn(fast_link(), CongestionControl::Bbr);
        let t = c.send(0.0, 2_000_000.0);
        let right_after = c.tcp_info(t.completion).in_flight;
        let later = c.tcp_info(t.completion + 1.0).in_flight;
        assert!(right_after > later, "{right_after} vs {later}");
        assert!(later < 0.05 * right_after.max(1.0));
    }

    #[test]
    fn min_rtt_is_stable_but_srtt_moves() {
        let mut c = conn(fast_link(), CongestionControl::Cubic);
        for _ in 0..12 {
            let _ = c.send(c.last_completion, 2_000_000.0);
        }
        let info = c.tcp_info(c.last_completion);
        assert_eq!(info.min_rtt, 0.040, "min_rtt is the propagation delay");
        assert!(info.rtt >= info.min_rtt, "srtt includes queueing");
    }

    #[test]
    fn transfers_are_sequential_and_monotone() {
        let mut c = conn(fast_link(), CongestionControl::Bbr);
        let mut t = 0.0;
        for i in 0..20 {
            let tr = c.send(t, 200_000.0 + 50_000.0 * i as f64);
            assert!(tr.completion > tr.start);
            t = tr.completion + 0.5;
        }
        assert!(c.bytes_sent() > 0.0);
    }

    #[test]
    #[should_panic(expected = "sequential")]
    fn overlapping_sends_rejected() {
        let mut c = conn(fast_link(), CongestionControl::Bbr);
        let t = c.send(1.0, 1_000_000.0);
        let _ = c.send(t.completion - 0.1, 1_000.0);
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut c = conn(fast_link(), CongestionControl::Bbr);
            let mut times = Vec::new();
            for i in 0..10 {
                let tr = c.send(c.last_completion + (i % 3) as f64, 300_000.0);
                times.push(tr.transmission_time());
            }
            times
        };
        assert_eq!(run(), run());
    }
}
