//! Bootstrap confidence intervals (Efron & Tibshirani \[12\]).
//!
//! The statistic of interest is the *aggregate* rebuffering ratio
//! Σ stall / Σ watch, a ratio of sums — so the resampling unit must be the
//! stream, not the second.  §3.4 notes the consequence of heavy-tailed watch
//! times: "with 1.75 years of data for each scheme, the width of the 95%
//! confidence interval on a scheme's stall ratio is between ±10% and ±17% of
//! the mean value."

use rand::Rng;

/// A two-sided percentile confidence interval around a point estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    pub lo: f64,
    pub point: f64,
    pub hi: f64,
}

impl ConfidenceInterval {
    /// Half-width as a fraction of the point estimate (the "±10–17%" the
    /// paper quotes).
    pub fn relative_half_width(&self) -> f64 {
        if self.point == 0.0 {
            return f64::INFINITY;
        }
        ((self.hi - self.lo) / 2.0) / self.point
    }

    /// Whether two intervals are disjoint (the separation criterion used in
    /// the detectability analysis).
    pub fn disjoint_from(&self, other: &ConfidenceInterval) -> bool {
        self.hi < other.lo || other.hi < self.lo
    }
}

/// Percentile-bootstrap CI on the ratio of sums Σ numerator / Σ denominator.
///
/// `pairs` holds one `(numerator, denominator)` per stream — e.g.
/// `(stall_time, watch_time)`.  `confidence` is e.g. 0.95.
pub fn bootstrap_ratio_ci<R: Rng + ?Sized>(
    pairs: &[(f64, f64)],
    n_boot: usize,
    confidence: f64,
    rng: &mut R,
) -> ConfidenceInterval {
    assert!(!pairs.is_empty(), "need at least one stream");
    assert!(n_boot >= 10, "need a meaningful number of resamples");
    assert!((0.0..1.0).contains(&confidence) && confidence > 0.5);
    let denom_total: f64 = pairs.iter().map(|p| p.1).sum();
    assert!(denom_total > 0.0, "total denominator must be positive");
    let point = pairs.iter().map(|p| p.0).sum::<f64>() / denom_total;

    let n = pairs.len();
    let mut stats = Vec::with_capacity(n_boot);
    for _ in 0..n_boot {
        let mut num = 0.0;
        let mut den = 0.0;
        for _ in 0..n {
            let &(a, b) = &pairs[rng.random_range(0..n)];
            num += a;
            den += b;
        }
        stats.push(if den > 0.0 { num / den } else { 0.0 });
    }
    stats.sort_by(|a, b| a.total_cmp(b));
    let alpha = (1.0 - confidence) / 2.0;
    let lo_idx = ((n_boot as f64 * alpha).floor() as usize).min(n_boot - 1);
    let hi_idx = ((n_boot as f64 * (1.0 - alpha)).ceil() as usize).min(n_boot - 1);
    ConfidenceInterval { lo: stats[lo_idx], point, hi: stats[hi_idx] }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn point_estimate_is_ratio_of_sums() {
        let pairs = vec![(1.0, 100.0), (3.0, 100.0)];
        let ci = bootstrap_ratio_ci(&pairs, 200, 0.95, &mut rng(1));
        assert!((ci.point - 0.02).abs() < 1e-12);
    }

    #[test]
    fn interval_brackets_point() {
        let mut r = rng(2);
        let pairs: Vec<(f64, f64)> = (0..500)
            .map(|_| {
                let watch = 10.0 + 1000.0 * r.random::<f64>();
                let stall = if r.random::<f64>() < 0.05 { watch * 0.05 } else { 0.0 };
                (stall, watch)
            })
            .collect();
        let ci = bootstrap_ratio_ci(&pairs, 500, 0.95, &mut rng(3));
        assert!(ci.lo <= ci.point && ci.point <= ci.hi, "{ci:?}");
        assert!(ci.lo >= 0.0);
    }

    #[test]
    fn more_data_narrows_the_interval() {
        let mut r = rng(4);
        let gen = |n: usize, r: &mut rand::rngs::StdRng| -> Vec<(f64, f64)> {
            (0..n)
                .map(|_| {
                    let watch = 60.0 * (1.0 + 20.0 * r.random::<f64>());
                    let stall = if r.random::<f64>() < 0.03 { 2.0 } else { 0.0 };
                    (stall, watch)
                })
                .collect()
        };
        let small = gen(100, &mut r);
        let big = gen(10_000, &mut r);
        let ci_small = bootstrap_ratio_ci(&small, 400, 0.95, &mut rng(5));
        let ci_big = bootstrap_ratio_ci(&big, 400, 0.95, &mut rng(6));
        assert!(
            ci_big.relative_half_width() < ci_small.relative_half_width(),
            "small {:?} big {:?}",
            ci_small.relative_half_width(),
            ci_big.relative_half_width()
        );
    }

    #[test]
    fn heavy_tails_widen_the_interval() {
        // Same number of streams, same mean stall ratio, but stalls
        // concentrated in a few huge streams → wider CI.  This is the §3.4
        // effect that frustrates A/B measurement.
        let n = 2000;
        let even: Vec<(f64, f64)> = (0..n).map(|_| (0.6, 60.0)).collect();
        let tail: Vec<(f64, f64)> =
            (0..n).map(|i| if i % 100 == 0 { (60.0, 60.0) } else { (0.0, 60.0) }).collect();
        let ci_even = bootstrap_ratio_ci(&even, 400, 0.95, &mut rng(7));
        let ci_tail = bootstrap_ratio_ci(&tail, 400, 0.95, &mut rng(8));
        assert!((ci_even.point - ci_tail.point).abs() < 1e-9, "same mean by construction");
        assert!(ci_tail.relative_half_width() > 3.0 * ci_even.relative_half_width());
    }

    #[test]
    fn disjoint_detection() {
        let a = ConfidenceInterval { lo: 0.1, point: 0.15, hi: 0.2 };
        let b = ConfidenceInterval { lo: 0.25, point: 0.3, hi: 0.35 };
        let c = ConfidenceInterval { lo: 0.18, point: 0.22, hi: 0.3 };
        assert!(a.disjoint_from(&b));
        assert!(b.disjoint_from(&a));
        assert!(!a.disjoint_from(&c));
    }

    #[test]
    fn deterministic_given_seed() {
        let pairs = vec![(1.0, 50.0), (0.0, 70.0), (2.0, 30.0)];
        let a = bootstrap_ratio_ci(&pairs, 300, 0.95, &mut rng(9));
        let b = bootstrap_ratio_ci(&pairs, 300, 0.95, &mut rng(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn empty_input_panics() {
        bootstrap_ratio_ci(&[], 100, 0.95, &mut rng(10));
    }
}
