//! Per-stream and per-scheme summary figures (§3.4, Fig. 1).
//!
//! "We record throughput traces and client telemetry and calculate a set of
//! figures to summarize each stream: the total time between the first and
//! last recorded events of the stream, the startup time, the total watch time
//! ..., the total time the video is stalled for rebuffering, the average
//! SSIM, and the chunk-by-chunk variation in SSIM."

/// Summary figures for one stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamSummary {
    /// Seconds from stream start to first frame played.
    pub startup_delay: f64,
    /// Total watch time (first to last successfully played portion), seconds.
    pub watch_time: f64,
    /// Total rebuffering time within the watch, seconds.
    pub stall_time: f64,
    /// Mean SSIM of played chunks, dB (chunks are equal-duration, so the
    /// per-chunk mean *is* the duration-weighted mean).
    pub mean_ssim_db: f64,
    /// Mean |ΔSSIM| between consecutive played chunks, dB.
    pub ssim_variation_db: f64,
    /// SSIM (dB) of the first chunk played (cold-start quality, Fig. 9).
    pub first_chunk_ssim_db: f64,
    /// Mean sender-side `delivery_rate` over the stream, bytes/s — used for
    /// the "slow network paths" cut of Fig. 8 (< 6 Mbit/s).
    pub mean_delivery_rate: f64,
    /// Total compressed bytes sent.
    pub total_bytes: f64,
    /// Chunks played.
    pub chunks: usize,
}

impl StreamSummary {
    /// Rebuffering ratio (stall / watch), the headline metric of Fig. 1.
    pub fn stall_ratio(&self) -> f64 {
        if self.watch_time <= 0.0 {
            0.0
        } else {
            self.stall_time / self.watch_time
        }
    }

    /// Average video bitrate over the stream, bits/s (Fig. 4's x-axis).
    pub fn mean_bitrate(&self) -> f64 {
        if self.watch_time <= 0.0 {
            0.0
        } else {
            self.total_bytes * 8.0 / self.watch_time
        }
    }

    /// The paper's "slow network path" cut: mean TCP delivery_rate under
    /// 6 Mbit/s (Fig. 8).
    pub fn is_slow_path(&self) -> bool {
        self.mean_delivery_rate * 8.0 < 6.0e6
    }
}

/// Aggregate figures for one scheme, computed the way Fig. 1 reports them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemeSummary {
    /// Streams aggregated.
    pub n_streams: usize,
    /// Total watch time, seconds.
    pub total_watch_time: f64,
    /// Total stall time, seconds.
    pub total_stall_time: f64,
    /// Aggregate stall ratio: Σ stall / Σ watch ("Time stalled", Fig. 1).
    pub stall_ratio: f64,
    /// Watch-time-weighted mean SSIM, dB.
    pub mean_ssim_db: f64,
    /// Watch-time-weighted mean SSIM variation, dB.
    pub ssim_variation_db: f64,
    /// Watch-time-weighted mean bitrate, bits/s.
    pub mean_bitrate: f64,
    /// Mean startup delay, seconds.
    pub mean_startup_delay: f64,
    /// Mean first-chunk SSIM, dB.
    pub mean_first_chunk_ssim_db: f64,
}

impl SchemeSummary {
    /// Aggregate a scheme's streams.
    ///
    /// # Panics
    /// Panics if `streams` is empty (a scheme with no data has no summary).
    pub fn from_streams(streams: &[StreamSummary]) -> Self {
        assert!(!streams.is_empty(), "cannot summarize zero streams");
        let total_watch: f64 = streams.iter().map(|s| s.watch_time).sum();
        let total_stall: f64 = streams.iter().map(|s| s.stall_time).sum();
        let total_bytes: f64 = streams.iter().map(|s| s.total_bytes).sum();
        let wmean = |f: &dyn Fn(&StreamSummary) -> f64| -> f64 {
            if total_watch <= 0.0 {
                return f64::NAN;
            }
            streams.iter().map(|s| f(s) * s.watch_time).sum::<f64>() / total_watch
        };
        SchemeSummary {
            n_streams: streams.len(),
            total_watch_time: total_watch,
            total_stall_time: total_stall,
            stall_ratio: if total_watch > 0.0 { total_stall / total_watch } else { 0.0 },
            mean_ssim_db: wmean(&|s| s.mean_ssim_db),
            ssim_variation_db: wmean(&|s| s.ssim_variation_db),
            mean_bitrate: if total_watch > 0.0 { total_bytes * 8.0 / total_watch } else { 0.0 },
            mean_startup_delay: streams.iter().map(|s| s.startup_delay).sum::<f64>()
                / streams.len() as f64,
            mean_first_chunk_ssim_db: streams.iter().map(|s| s.first_chunk_ssim_db).sum::<f64>()
                / streams.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(watch: f64, stall: f64, ssim: f64) -> StreamSummary {
        StreamSummary {
            startup_delay: 0.5,
            watch_time: watch,
            stall_time: stall,
            mean_ssim_db: ssim,
            ssim_variation_db: 0.8,
            first_chunk_ssim_db: 10.0,
            mean_delivery_rate: 1e6,
            total_bytes: watch * 300_000.0,
            chunks: (watch / 2.002) as usize,
        }
    }

    #[test]
    fn stall_ratio() {
        let s = stream(100.0, 2.0, 16.0);
        assert!((s.stall_ratio() - 0.02).abs() < 1e-12);
        let zero = stream(0.0, 0.0, 16.0);
        assert_eq!(zero.stall_ratio(), 0.0);
    }

    #[test]
    fn slow_path_cut_at_6mbps() {
        let mut s = stream(10.0, 0.0, 16.0);
        s.mean_delivery_rate = 5.9e6 / 8.0;
        assert!(s.is_slow_path());
        s.mean_delivery_rate = 6.1e6 / 8.0;
        assert!(!s.is_slow_path());
    }

    #[test]
    fn scheme_summary_aggregates_stall_ratio_not_mean_of_ratios() {
        // One long clean stream and one short stalled one: the aggregate
        // ratio is Σstall/Σwatch, not the mean of per-stream ratios.
        let streams = [stream(1000.0, 0.0, 16.0), stream(10.0, 5.0, 16.0)];
        let agg = SchemeSummary::from_streams(&streams);
        assert!((agg.stall_ratio - 5.0 / 1010.0).abs() < 1e-12);
        assert_eq!(agg.n_streams, 2);
    }

    #[test]
    fn mean_ssim_is_watch_weighted() {
        let streams = [stream(90.0, 0.0, 10.0), stream(10.0, 0.0, 20.0)];
        let agg = SchemeSummary::from_streams(&streams);
        assert!((agg.mean_ssim_db - 11.0).abs() < 1e-9);
    }

    #[test]
    fn mean_bitrate_from_totals() {
        let streams = [stream(100.0, 0.0, 16.0)];
        let agg = SchemeSummary::from_streams(&streams);
        assert!((agg.mean_bitrate - 2_400_000.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "zero streams")]
    fn empty_summary_panics() {
        let _ = SchemeSummary::from_streams(&[]);
    }
}
