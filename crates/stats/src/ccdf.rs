//! Complementary CDFs (Fig. 10's log–log viewership-duration plot).

/// Compute CCDF points `(x, P[X > x])` from samples.
///
/// Returns one point per distinct sample value, ascending in `x`.  Plotted on
/// log–log axes this is the standard heavy-tail diagnostic; Fig. 10's session
/// durations are straight-ish in the tail (power law).
pub fn ccdf_points(samples: &[f64]) -> Vec<(f64, f64)> {
    assert!(!samples.is_empty(), "need at least one sample");
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len() as f64;
    let mut out = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let x = sorted[i];
        // Advance past duplicates.
        let mut j = i;
        while j < sorted.len() && sorted[j] == x {
            j += 1;
        }
        // P[X > x] = fraction strictly greater.
        out.push((x, (sorted.len() - j) as f64 / n));
        i = j;
    }
    out
}

/// Evaluate an empirical CCDF at a query point.
pub fn ccdf_at(samples: &[f64], x: f64) -> f64 {
    assert!(!samples.is_empty());
    samples.iter().filter(|&&s| s > x).count() as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_ccdf() {
        let pts = ccdf_points(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(pts, vec![(1.0, 0.75), (2.0, 0.5), (3.0, 0.25), (4.0, 0.0)]);
    }

    #[test]
    fn duplicates_collapse() {
        let pts = ccdf_points(&[1.0, 1.0, 2.0]);
        assert_eq!(pts, vec![(1.0, 1.0 / 3.0), (2.0, 0.0)]);
    }

    #[test]
    fn ccdf_is_monotone_nonincreasing() {
        let samples: Vec<f64> = (0..1000).map(|i| ((i * 37) % 97) as f64).collect();
        let pts = ccdf_points(&samples);
        for w in pts.windows(2) {
            assert!(w[0].1 >= w[1].1);
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn ccdf_at_matches_points() {
        let samples = [5.0, 10.0, 10.0, 20.0];
        assert!((ccdf_at(&samples, 4.9) - 1.0).abs() < 1e-12);
        assert!((ccdf_at(&samples, 5.0) - 0.75).abs() < 1e-12);
        assert!((ccdf_at(&samples, 10.0) - 0.25).abs() < 1e-12);
        assert_eq!(ccdf_at(&samples, 100.0), 0.0);
    }
}
