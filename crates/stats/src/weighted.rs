//! Duration-weighted means and standard errors.
//!
//! "We calculate confidence intervals on average SSIM using the formula for
//! weighted standard error, weighting each stream by its duration" (§3.4).

/// Weighted mean of `values` with non-negative `weights`.
pub fn weighted_mean(values: &[f64], weights: &[f64]) -> f64 {
    assert_eq!(values.len(), weights.len());
    assert!(!values.is_empty(), "need at least one value");
    let wsum: f64 = weights.iter().sum();
    assert!(wsum > 0.0, "weights must sum to a positive value");
    values.iter().zip(weights).map(|(v, w)| v * w).sum::<f64>() / wsum
}

/// Weighted standard error of the weighted mean (Cochran's approximation for
/// ratio estimators, reduced to the common "weighted SE" formula):
///
/// ```text
/// SE² = Σ wᵢ²(xᵢ − x̄_w)² / (Σ wᵢ)²
/// ```
pub fn weighted_standard_error(values: &[f64], weights: &[f64]) -> f64 {
    let mean = weighted_mean(values, weights);
    let wsum: f64 = weights.iter().sum();
    let var: f64 = values.iter().zip(weights).map(|(v, w)| (w * (v - mean)).powi(2)).sum::<f64>()
        / (wsum * wsum);
    var.sqrt()
}

/// Weighted mean with a normal-approximation confidence interval
/// (`z = 1.96` at 95%).
pub fn weighted_mean_ci(values: &[f64], weights: &[f64], z: f64) -> (f64, f64, f64) {
    let mean = weighted_mean(values, weights);
    let se = weighted_standard_error(values, weights);
    (mean - z * se, mean, mean + z * se)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_weights_reduce_to_plain_mean() {
        let v = [1.0, 2.0, 3.0, 4.0];
        let w = [1.0; 4];
        assert!((weighted_mean(&v, &w) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn weights_shift_the_mean() {
        let v = [10.0, 20.0];
        let w = [3.0, 1.0];
        assert!((weighted_mean(&v, &w) - 12.5).abs() < 1e-12);
    }

    #[test]
    fn zero_variance_zero_se() {
        let v = [5.0; 10];
        let w: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        assert!(weighted_standard_error(&v, &w) < 1e-12);
    }

    #[test]
    fn se_shrinks_with_sample_size() {
        // n equal-weight samples of variance σ²: SE = σ/√n.
        let mk = |n: usize| -> (Vec<f64>, Vec<f64>) {
            let v: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
            (v, vec![1.0; n])
        };
        let (v1, w1) = mk(100);
        let (v2, w2) = mk(10_000);
        let se1 = weighted_standard_error(&v1, &w1);
        let se2 = weighted_standard_error(&v2, &w2);
        assert!((se1 / se2 - 10.0).abs() < 0.1, "se ratio {}", se1 / se2);
    }

    #[test]
    fn heavy_weight_on_one_stream_dominates_se() {
        // One stream carrying most weight → its deviation dominates; CI
        // doesn't shrink with extra tiny streams.  (Why a few marathon
        // sessions control the SSIM confidence interval.)
        let mut v = vec![16.0; 1000];
        let mut w = vec![1.0; 1000];
        v.push(10.0);
        w.push(2000.0);
        let se = weighted_standard_error(&v, &w);
        assert!(se > 1.0, "dominating stream should inflate SE, got {se}");
    }

    #[test]
    fn ci_brackets_mean() {
        let v = [15.0, 16.0, 17.0, 18.0];
        let w = [10.0, 200.0, 30.0, 4.0];
        let (lo, mean, hi) = weighted_mean_ci(&v, &w, 1.96);
        assert!(lo < mean && mean < hi);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weights_panic() {
        weighted_mean(&[1.0], &[0.0]);
    }
}
