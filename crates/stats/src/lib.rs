//! # puffer-stats — the paper's statistical machinery
//!
//! §3.4 is unusually explicit about methodology, and this crate implements
//! all of it:
//!
//! * per-stream summary figures ([`summary`]): startup time, watch time,
//!   stall time, mean SSIM, chunk-to-chunk SSIM variation — the columns of
//!   Fig. 1;
//! * bootstrap confidence intervals on rebuffering ratio ([`bootstrap`]):
//!   "We calculate confidence intervals on rebuffering ratio with the
//!   bootstrap method \[12\], simulating streams drawn empirically from each
//!   scheme's observed distribution";
//! * duration-weighted standard errors for SSIM ([`weighted`]): "We
//!   calculate confidence intervals on average SSIM using the formula for
//!   weighted standard error, weighting each stream by its duration";
//! * CCDFs for the time-on-site analysis of Fig. 10 ([`ccdf`]);
//! * the detectability analysis ([`detect`]) behind "it takes about 2
//!   stream-years of data to reliably distinguish two ABR schemes whose
//!   innate 'true' performance differs by 15%" (§5.3);
//! * mergeable streaming accumulators ([`streaming`]) so the same
//!   statistics run out-of-core over `.puf` telemetry archives at paper
//!   scale (≥1M stream-hours) in one bounded-memory pass.

pub mod bootstrap;
pub mod ccdf;
pub mod detect;
pub mod streaming;
pub mod summary;
pub mod weighted;

pub use bootstrap::{bootstrap_ratio_ci, ConfidenceInterval};
pub use ccdf::ccdf_points;
pub use detect::{stream_years_to_distinguish, PowerCurve, PowerPoint};
pub use streaming::{PoissonBootstrap, RatioAccumulator, Reservoir, WeightedMeanAccumulator};
pub use summary::{SchemeSummary, StreamSummary};
pub use weighted::{weighted_mean, weighted_mean_ci};

/// Seconds in a year — the paper reports data volumes in "stream-years".
pub const SECONDS_PER_YEAR: f64 = 365.25 * 24.0 * 3600.0;

#[cfg(test)]
mod tests {
    #[test]
    fn seconds_per_year() {
        assert!((super::SECONDS_PER_YEAR - 31_557_600.0).abs() < 1.0);
    }
}
