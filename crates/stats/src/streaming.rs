//! Mergeable streaming accumulators for out-of-core analysis (§3.4).
//!
//! The paper's power analysis needs statistics over ≥1M stream-hours — far
//! more rows than fit comfortably in RAM once telemetry lives on disk in
//! `.puf` archives.  Every statistic §3.4 uses decomposes into a small,
//! mergeable state that one streaming pass can maintain:
//!
//! * [`RatioAccumulator`] — the aggregate rebuffering ratio Σ stall/Σ watch
//!   ("the fraction of time spent stalled... a ratio of sums");
//! * [`WeightedMeanAccumulator`] — the duration-weighted SSIM mean and its
//!   weighted standard error ("weighting each stream by its duration"),
//!   matching [`crate::weighted`] exactly via the expanded moment form;
//! * [`Reservoir`] — a uniform fixed-size sample of an unbounded stream
//!   (Vitter's Algorithm R), for quantiles and spot checks;
//! * [`PoissonBootstrap`] — percentile bootstrap CIs on the ratio of sums
//!   (Efron & Tibshirani \[12\]) computed in **one pass**: classical
//!   resampling needs random access to all streams, but drawing each
//!   stream's multiplicity per replicate from Poisson(1) is equivalent for
//!   large n and needs only the replicates' running sums.
//!
//! All accumulators are `merge`-able, so per-shard passes (e.g. one per
//! archive file) combine exactly; results depend only on the data and the
//! seeds, never on shard boundaries (for the deterministic accumulators) —
//! the sampling ones ([`Reservoir`], [`PoissonBootstrap`]) are deterministic
//! given their RNG stream.

use crate::bootstrap::ConfidenceInterval;
use rand::Rng;

/// Running ratio of sums Σ numerator / Σ denominator with a stream count —
/// the rebuffering-ratio statistic as mergeable state.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RatioAccumulator {
    /// Σ numerator (e.g. total stall seconds).
    pub num: f64,
    /// Σ denominator (e.g. total watch seconds).
    pub den: f64,
    /// Streams folded in.
    pub n: u64,
}

impl RatioAccumulator {
    /// Fold in one stream's `(numerator, denominator)` pair.
    pub fn push(&mut self, num: f64, den: f64) {
        self.num += num;
        self.den += den;
        self.n += 1;
    }

    /// Combine with another accumulator (exact: addition of sums).
    pub fn merge(&mut self, other: &RatioAccumulator) {
        self.num += other.num;
        self.den += other.den;
        self.n += other.n;
    }

    /// The ratio of sums; 0 for an empty or zero-denominator state.
    pub fn ratio(&self) -> f64 {
        if self.den > 0.0 {
            self.num / self.den
        } else {
            0.0
        }
    }
}

/// Streaming duration-weighted mean and weighted standard error.
///
/// Maintains the moments Σw, Σwx, Σw², Σw²x, Σw²x² so that
/// [`crate::weighted::weighted_standard_error`]'s
/// `SE² = Σ wᵢ²(xᵢ − x̄_w)² / (Σ wᵢ)²` is recovered by expanding the
/// square: `Σw²(x−m)² = Σw²x² − 2m·Σw²x + m²·Σw²` (pinned against the
/// two-pass formula in the tests).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WeightedMeanAccumulator {
    n: u64,
    w_sum: f64,
    wx_sum: f64,
    w2_sum: f64,
    w2x_sum: f64,
    w2x2_sum: f64,
}

impl WeightedMeanAccumulator {
    /// Fold in one value with its non-negative weight.
    pub fn push(&mut self, value: f64, weight: f64) {
        self.n += 1;
        self.w_sum += weight;
        self.wx_sum += weight * value;
        let w2 = weight * weight;
        self.w2_sum += w2;
        self.w2x_sum += w2 * value;
        self.w2x2_sum += w2 * value * value;
    }

    /// Combine with another accumulator (addition of moments).
    pub fn merge(&mut self, other: &WeightedMeanAccumulator) {
        self.n += other.n;
        self.w_sum += other.w_sum;
        self.wx_sum += other.wx_sum;
        self.w2_sum += other.w2_sum;
        self.w2x_sum += other.w2x_sum;
        self.w2x2_sum += other.w2x2_sum;
    }

    /// Values folded in.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The weighted mean x̄_w = Σwx / Σw.
    pub fn mean(&self) -> f64 {
        assert!(self.w_sum > 0.0, "weights must sum to a positive value");
        self.wx_sum / self.w_sum
    }

    /// The weighted standard error (same quantity as
    /// [`crate::weighted::weighted_standard_error`]).
    pub fn standard_error(&self) -> f64 {
        let m = self.mean();
        let var_num = self.w2x2_sum - 2.0 * m * self.w2x_sum + m * m * self.w2_sum;
        // Cancellation can push the expanded form a hair below zero.
        (var_num.max(0.0) / (self.w_sum * self.w_sum)).sqrt()
    }

    /// Normal-approximation CI around the weighted mean (`z = 1.96` at 95%).
    pub fn ci(&self, z: f64) -> ConfidenceInterval {
        let mean = self.mean();
        let se = self.standard_error();
        ConfidenceInterval { lo: mean - z * se, point: mean, hi: mean + z * se }
    }
}

/// Fixed-size uniform sample of an unbounded stream (Vitter's Algorithm R).
///
/// After `n ≥ k` pushes, each of the `n` items seen has probability `k/n` of
/// being in the reservoir.  Deterministic given the RNG stream; the sample
/// order within the reservoir is not meaningful.
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    items: Vec<T>,
    capacity: usize,
    seen: u64,
}

impl<T> Reservoir<T> {
    /// An empty reservoir holding at most `capacity` items.
    pub fn new(capacity: usize) -> Reservoir<T> {
        assert!(capacity > 0, "reservoir needs positive capacity");
        Reservoir { items: Vec::with_capacity(capacity), capacity, seen: 0 }
    }

    /// Offer one item; it is kept with probability `capacity / seen`.
    pub fn push<R: Rng + ?Sized>(&mut self, item: T, rng: &mut R) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
            return;
        }
        let j = rng.random_range(0..self.seen);
        if let Ok(j) = usize::try_from(j) {
            if j < self.capacity {
                self.items[j] = item;
            }
        }
    }

    /// The current sample (unordered).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Total items offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

/// Single-pass percentile bootstrap on the ratio of sums Σ num / Σ den.
///
/// Classical stream-level resampling ([`crate::bootstrap_ratio_ci`]) draws
/// `n` streams with replacement per replicate — impossible in one pass over
/// an archive.  The Poisson bootstrap replaces each stream's Multinomial
/// multiplicity with an independent Poisson(1) draw per replicate (mean 1,
/// variance 1 — the same first two moments, converging to the same
/// distribution as n grows), so each replicate reduces to a running
/// weighted sum that one pass maintains.  The point estimate uses the exact
/// totals, not a resample.
#[derive(Debug, Clone)]
pub struct PoissonBootstrap {
    /// Exact totals (the point estimate).
    exact: RatioAccumulator,
    /// Per-replicate (Σ num, Σ den) running sums.
    replicates: Vec<(f64, f64)>,
}

/// Draw from Poisson(mean 1) by inversion.  The tail is truncated at 16
/// (P ≈ 1e-14) to bound work per call.
fn poisson1<R: Rng + ?Sized>(rng: &mut R) -> u32 {
    let u: f64 = rng.random();
    let mut k = 0u32;
    let mut p = (-1.0f64).exp();
    let mut cum = p;
    while u > cum && k < 16 {
        k += 1;
        p /= f64::from(k);
        cum += p;
    }
    k
}

impl PoissonBootstrap {
    /// A bootstrap with `n_boot` replicates (≥ 10, as in
    /// [`crate::bootstrap_ratio_ci`]).
    pub fn new(n_boot: usize) -> PoissonBootstrap {
        assert!(n_boot >= 10, "need a meaningful number of resamples");
        PoissonBootstrap {
            exact: RatioAccumulator::default(),
            replicates: vec![(0.0, 0.0); n_boot],
        }
    }

    /// Fold in one stream's `(numerator, denominator)`; each replicate
    /// counts it Poisson(1) times.  Allocation-free.
    pub fn push<R: Rng + ?Sized>(&mut self, num: f64, den: f64, rng: &mut R) {
        self.exact.push(num, den);
        for rep in &mut self.replicates {
            let m = f64::from(poisson1(rng));
            rep.0 += m * num;
            rep.1 += m * den;
        }
    }

    /// Combine with another bootstrap of the same replicate count (exact:
    /// replicate sums add, since Poisson multiplicities are independent
    /// across streams).
    pub fn merge(&mut self, other: &PoissonBootstrap) {
        assert_eq!(self.replicates.len(), other.replicates.len(), "replicate counts must match");
        self.exact.merge(&other.exact);
        for (a, b) in self.replicates.iter_mut().zip(&other.replicates) {
            a.0 += b.0;
            a.1 += b.1;
        }
    }

    /// Streams folded in.
    pub fn n(&self) -> u64 {
        self.exact.n
    }

    /// Σ denominator folded in (e.g. total watch seconds).
    pub fn den_total(&self) -> f64 {
        self.exact.den
    }

    /// Percentile CI at `confidence` (e.g. 0.95), with the exact ratio of
    /// sums as the point estimate.  Same percentile-index convention as
    /// [`crate::bootstrap_ratio_ci`].
    pub fn ci(&self, confidence: f64) -> ConfidenceInterval {
        assert!((0.0..1.0).contains(&confidence) && confidence > 0.5);
        assert!(self.exact.n > 0, "need at least one stream");
        let n_boot = self.replicates.len();
        let mut stats: Vec<f64> = self
            .replicates
            .iter()
            .map(|&(num, den)| if den > 0.0 { num / den } else { 0.0 })
            .collect();
        stats.sort_by(|a, b| a.total_cmp(b));
        let alpha = (1.0 - confidence) / 2.0;
        let lo_idx = ((n_boot as f64 * alpha).floor() as usize).min(n_boot - 1);
        let hi_idx = ((n_boot as f64 * (1.0 - alpha)).ceil() as usize).min(n_boot - 1);
        ConfidenceInterval { lo: stats[lo_idx], point: self.exact.ratio(), hi: stats[hi_idx] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bootstrap::bootstrap_ratio_ci;
    use crate::weighted::{weighted_mean, weighted_standard_error};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn population(n: usize, seed: u64) -> Vec<(f64, f64)> {
        let mut r = rng(seed);
        (0..n)
            .map(|_| {
                let u: f64 = r.random();
                let watch = 30.0 * (1.0 / (1.0 - u * 0.999)).powf(0.7);
                let stall =
                    if r.random::<f64>() < 0.04 { watch * 0.05 * r.random::<f64>() } else { 0.0 };
                (stall, watch)
            })
            .collect()
    }

    #[test]
    fn ratio_merge_equals_single_pass() {
        let pop = population(500, 1);
        let mut whole = RatioAccumulator::default();
        let mut left = RatioAccumulator::default();
        let mut right = RatioAccumulator::default();
        for (i, &(s, w)) in pop.iter().enumerate() {
            whole.push(s, w);
            if i % 2 == 0 {
                left.push(s, w);
            } else {
                right.push(s, w);
            }
        }
        left.merge(&right);
        assert_eq!(left.n, whole.n);
        assert!((left.ratio() - whole.ratio()).abs() < 1e-15);
    }

    #[test]
    fn weighted_accumulator_matches_two_pass_formulas() {
        let mut r = rng(2);
        let values: Vec<f64> = (0..300).map(|_| 10.0 + 8.0 * r.random::<f64>()).collect();
        let weights: Vec<f64> = (0..300).map(|_| 1.0 + 5000.0 * r.random::<f64>()).collect();
        let mut acc = WeightedMeanAccumulator::default();
        for (v, w) in values.iter().zip(&weights) {
            acc.push(*v, *w);
        }
        let mean = weighted_mean(&values, &weights);
        let se = weighted_standard_error(&values, &weights);
        assert!((acc.mean() - mean).abs() < 1e-9 * mean.abs(), "{} vs {mean}", acc.mean());
        assert!((acc.standard_error() - se).abs() < 1e-6 * se.max(1e-12), "se mismatch");
        let ci = acc.ci(1.96);
        assert!(ci.lo < ci.point && ci.point < ci.hi);
    }

    #[test]
    fn weighted_accumulator_merge_is_exact() {
        let mut whole = WeightedMeanAccumulator::default();
        let mut a = WeightedMeanAccumulator::default();
        let mut b = WeightedMeanAccumulator::default();
        for i in 0..100 {
            let v = (i % 17) as f64;
            let w = 1.0 + (i % 5) as f64;
            whole.push(v, w);
            if i < 40 {
                a.push(v, w);
            } else {
                b.push(v, w);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn reservoir_keeps_everything_below_capacity() {
        let mut res = Reservoir::new(100);
        let mut r = rng(3);
        for i in 0..50u64 {
            res.push(i, &mut r);
        }
        assert_eq!(res.items().len(), 50);
        assert_eq!(res.seen(), 50);
    }

    #[test]
    fn reservoir_sample_is_roughly_uniform() {
        // Offer 0..10_000; the kept sample's mean should be near 5000.
        let mut res = Reservoir::new(500);
        let mut r = rng(4);
        for i in 0..10_000u64 {
            res.push(i as f64, &mut r);
        }
        assert_eq!(res.items().len(), 500);
        let mean: f64 = res.items().iter().sum::<f64>() / 500.0;
        assert!((3800.0..6200.0).contains(&mean), "sample mean {mean}");
    }

    #[test]
    fn reservoir_is_deterministic_given_seed() {
        let run = || {
            let mut res = Reservoir::new(32);
            let mut r = rng(5);
            for i in 0..1000u64 {
                res.push(i, &mut r);
            }
            res.items().to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn poisson1_has_mean_one() {
        let mut r = rng(6);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| u64::from(poisson1(&mut r))).sum();
        let mean = sum as f64 / n as f64;
        assert!((0.97..1.03).contains(&mean), "Poisson(1) sample mean {mean}");
    }

    #[test]
    fn poisson_bootstrap_point_is_exact_ratio() {
        let pop = population(800, 7);
        let mut boot = PoissonBootstrap::new(200);
        let mut r = rng(8);
        for &(s, w) in &pop {
            boot.push(s, w, &mut r);
        }
        let want: f64 = pop.iter().map(|p| p.0).sum::<f64>() / pop.iter().map(|p| p.1).sum::<f64>();
        let ci = boot.ci(0.95);
        assert!((ci.point - want).abs() < 1e-12);
        assert!(ci.lo <= ci.point && ci.point <= ci.hi, "{ci:?}");
    }

    #[test]
    fn poisson_bootstrap_width_tracks_classical_bootstrap() {
        // Same population, same statistic: the one-pass CI must agree with
        // the random-access bootstrap to well within a factor of two.
        let pop = population(4000, 9);
        let mut boot = PoissonBootstrap::new(400);
        let mut r = rng(10);
        for &(s, w) in &pop {
            boot.push(s, w, &mut r);
        }
        let ours = boot.ci(0.95).relative_half_width();
        let classical = bootstrap_ratio_ci(&pop, 400, 0.95, &mut rng(11)).relative_half_width();
        assert!(
            ours < classical * 1.6 && classical < ours * 1.6,
            "poisson {ours} vs classical {classical}"
        );
    }

    #[test]
    fn poisson_bootstrap_narrows_with_more_data() {
        let small = population(300, 12);
        let big = population(30_000, 12);
        let run = |pop: &[(f64, f64)], seed: u64| {
            let mut boot = PoissonBootstrap::new(200);
            let mut r = rng(seed);
            for &(s, w) in pop {
                boot.push(s, w, &mut r);
            }
            boot.ci(0.95).relative_half_width()
        };
        assert!(run(&big, 13) < run(&small, 14));
    }

    #[test]
    fn poisson_bootstrap_merge_combines_shards() {
        let pop = population(2000, 15);
        let (left, right) = pop.split_at(1000);
        let mut a = PoissonBootstrap::new(200);
        let mut b = PoissonBootstrap::new(200);
        let mut ra = rng(16);
        let mut rb = rng(17);
        for &(s, w) in left {
            a.push(s, w, &mut ra);
        }
        for &(s, w) in right {
            b.push(s, w, &mut rb);
        }
        a.merge(&b);
        assert_eq!(a.n(), 2000);
        let want: f64 = pop.iter().map(|p| p.0).sum::<f64>() / pop.iter().map(|p| p.1).sum::<f64>();
        let ci = a.ci(0.95);
        assert!((ci.point - want).abs() < 1e-12);
        // The merged interval must be in the same regime as a single pass.
        let mut whole = PoissonBootstrap::new(200);
        let mut rw = rng(18);
        for &(s, w) in &pop {
            whole.push(s, w, &mut rw);
        }
        let merged_w = ci.relative_half_width();
        let whole_w = whole.ci(0.95).relative_half_width();
        assert!(merged_w < whole_w * 2.0 && whole_w < merged_w * 2.0);
    }
}
