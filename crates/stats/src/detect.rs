//! Detectability analysis (§3.4, §5.3).
//!
//! "By our calculations, the variability of inputs is such that it takes
//! about 2 stream-years of data to reliably distinguish two ABR schemes whose
//! innate 'true' performance differs by 15%."
//!
//! We reproduce that calculation by Monte-Carlo power analysis on the
//! empirical stream distribution: draw two synthetic experiment arms from the
//! same observed `(stall, watch)` stream population, scale one arm's stalls
//! by `(1 − improvement)`, compute each arm's bootstrap CI, and ask whether
//! the intervals separate.  The detectable data volume is the smallest number
//! of streams at which separation happens in ≥ `power` of simulated
//! experiments.

use crate::bootstrap::{bootstrap_ratio_ci, ConfidenceInterval};
use crate::streaming::PoissonBootstrap;
use crate::SECONDS_PER_YEAR;
use rand::Rng;

/// Configuration of the power analysis.
#[derive(Debug, Clone, Copy)]
pub struct DetectConfig {
    /// Relative stall-ratio improvement of the better arm (e.g. 0.15).
    pub improvement: f64,
    /// CI confidence (e.g. 0.95).
    pub confidence: f64,
    /// Required fraction of simulated experiments with separated CIs.
    pub power: f64,
    /// Simulated experiments per candidate size.
    pub n_experiments: usize,
    /// Bootstrap resamples per CI.
    pub n_boot: usize,
}

impl Default for DetectConfig {
    fn default() -> Self {
        DetectConfig {
            improvement: 0.15,
            confidence: 0.95,
            power: 0.8,
            n_experiments: 20,
            n_boot: 200,
        }
    }
}

/// Fraction of simulated A/B experiments of `n_streams` per arm whose CIs
/// separate.
pub fn detection_rate<R: Rng + ?Sized>(
    population: &[(f64, f64)],
    n_streams: usize,
    cfg: &DetectConfig,
    rng: &mut R,
) -> f64 {
    assert!(!population.is_empty());
    assert!(n_streams > 0);
    let mut detected = 0usize;
    for _ in 0..cfg.n_experiments {
        let draw = |rng: &mut R, scale: f64| -> Vec<(f64, f64)> {
            (0..n_streams)
                .map(|_| {
                    let &(stall, watch) = &population[rng.random_range(0..population.len())];
                    (stall * scale, watch)
                })
                .collect()
        };
        let a = draw(rng, 1.0);
        let b = draw(rng, 1.0 - cfg.improvement);
        let ci_a = bootstrap_ratio_ci(&a, cfg.n_boot, cfg.confidence, rng);
        let ci_b = bootstrap_ratio_ci(&b, cfg.n_boot, cfg.confidence, rng);
        if ci_a.disjoint_from(&ci_b) {
            detected += 1;
        }
    }
    detected as f64 / cfg.n_experiments as f64
}

/// Smallest per-arm data volume, in stream-years of watch time, at which the
/// improvement in `cfg` is detected with the required power.  Searches over a
/// doubling schedule of stream counts (bounded by `max_streams`) and returns
/// `None` if even the largest size fails.
pub fn stream_years_to_distinguish<R: Rng + ?Sized>(
    population: &[(f64, f64)],
    cfg: &DetectConfig,
    max_streams: usize,
    rng: &mut R,
) -> Option<f64> {
    assert!(!population.is_empty());
    let mean_watch = population.iter().map(|p| p.1).sum::<f64>() / population.len() as f64;
    let mut n = 250usize;
    while n <= max_streams {
        if detection_rate(population, n, cfg, rng) >= cfg.power {
            return Some(n as f64 * mean_watch / SECONDS_PER_YEAR);
        }
        n *= 2;
    }
    None
}

/// One row of a CI-width-vs-N curve: both arms' intervals at a data cut.
#[derive(Debug, Clone, Copy)]
pub struct PowerPoint {
    /// Streams per arm at this cut.
    pub streams_per_arm: u64,
    /// Stream-hours of watch time per arm at this cut (the smaller arm's).
    pub hours_per_arm: f64,
    /// Control arm's stall-ratio CI.
    pub ci_a: ConfidenceInterval,
    /// Treatment arm's stall-ratio CI (stalls scaled by 1 − improvement).
    pub ci_b: ConfidenceInterval,
}

impl PowerPoint {
    /// Whether the two arms' intervals are disjoint at this cut — the
    /// separation criterion of the detectability analysis.
    pub fn separated(&self) -> bool {
        self.ci_a.disjoint_from(&self.ci_b)
    }
}

/// Push-based CI-width-vs-N curve over a single streaming pass (§3.4).
///
/// Streams arrive one at a time (e.g. read back from a `.puf` archive);
/// each is assigned to an arm by the caller, the treatment arm's stalls are
/// scaled by `1 − improvement` (the synthetic "truly better" scheme of the
/// paper's calculation), and both arms' Poisson-bootstrap states advance.
/// Whenever *both* arms' accumulated watch time reaches the next requested
/// cut, the current CIs are snapshotted — so one pass over N stream-hours
/// yields the whole curve up to N, in bounded memory.
#[derive(Debug)]
pub struct PowerCurve {
    cuts_hours: Vec<f64>,
    next_cut: usize,
    improvement: f64,
    confidence: f64,
    boot_a: PoissonBootstrap,
    boot_b: PoissonBootstrap,
    points: Vec<PowerPoint>,
}

impl PowerCurve {
    /// A curve snapshotting at each of `cuts_hours` (ascending, per-arm
    /// stream-hours).  `improvement` and `confidence` as in
    /// [`DetectConfig`]; `n_boot` bootstrap replicates per arm.
    pub fn new(
        cuts_hours: Vec<f64>,
        improvement: f64,
        confidence: f64,
        n_boot: usize,
    ) -> PowerCurve {
        assert!(cuts_hours.windows(2).all(|w| w[0] < w[1]), "cuts must be ascending");
        assert!((0.0..1.0).contains(&improvement));
        PowerCurve {
            cuts_hours,
            next_cut: 0,
            improvement,
            confidence,
            boot_a: PoissonBootstrap::new(n_boot),
            boot_b: PoissonBootstrap::new(n_boot),
            points: Vec::new(),
        }
    }

    /// Feed one stream's `(stall, watch)` seconds into an arm
    /// (`treatment = true` scales the stall by `1 − improvement`), then
    /// snapshot any cuts both arms have now reached.
    pub fn push_stream<R: Rng + ?Sized>(
        &mut self,
        treatment: bool,
        stall: f64,
        watch: f64,
        rng: &mut R,
    ) {
        if treatment {
            self.boot_b.push(stall * (1.0 - self.improvement), watch, rng);
        } else {
            self.boot_a.push(stall, watch, rng);
        }
        while self.next_cut < self.cuts_hours.len() {
            let cut_seconds = self.cuts_hours[self.next_cut] * 3600.0;
            if self.boot_a.den_total() < cut_seconds || self.boot_b.den_total() < cut_seconds {
                break;
            }
            self.points.push(PowerPoint {
                streams_per_arm: self.boot_a.n().min(self.boot_b.n()),
                hours_per_arm: self.boot_a.den_total().min(self.boot_b.den_total()) / 3600.0,
                ci_a: self.boot_a.ci(self.confidence),
                ci_b: self.boot_b.ci(self.confidence),
            });
            self.next_cut += 1;
        }
    }

    /// Cuts snapshotted so far (in ascending cut order).
    pub fn points(&self) -> &[PowerPoint] {
        &self.points
    }

    /// Finish the pass: also snapshot the final state if data ran out
    /// before the last cut was reached, then return all points.
    pub fn finish(mut self) -> Vec<PowerPoint> {
        if self.next_cut < self.cuts_hours.len() && self.boot_a.n() > 0 && self.boot_b.n() > 0 {
            self.points.push(PowerPoint {
                streams_per_arm: self.boot_a.n().min(self.boot_b.n()),
                hours_per_arm: self.boot_a.den_total().min(self.boot_b.den_total()) / 3600.0,
                ci_a: self.boot_a.ci(self.confidence),
                ci_b: self.boot_b.ci(self.confidence),
            });
        }
        self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    /// A Puffer-like stream population: heavy-tailed watch times, rare
    /// stalls concentrated on a few streams.
    fn population(n: usize, seed: u64) -> Vec<(f64, f64)> {
        let mut r = rng(seed);
        (0..n)
            .map(|_| {
                // Log-normal-ish watch times, mean of a few hundred seconds.
                let u: f64 = r.random();
                let watch = 30.0 * (1.0 / (1.0 - u * 0.999)).powf(0.7);
                let stall =
                    if r.random::<f64>() < 0.04 { watch * 0.05 * r.random::<f64>() } else { 0.0 };
                (stall, watch)
            })
            .collect()
    }

    #[test]
    fn detection_rate_increases_with_data() {
        let pop = population(8_000, 1);
        let cfg = DetectConfig { n_experiments: 8, n_boot: 80, ..DetectConfig::default() };
        let small = detection_rate(&pop, 300, &cfg, &mut rng(2));
        let large = detection_rate(&pop, 8_000, &cfg, &mut rng(3));
        assert!(large >= small, "more streams must not hurt detection: {small} vs {large}");
    }

    #[test]
    fn tiny_experiments_cannot_detect_15_percent() {
        // The paper's point: a 15% difference is invisible at small scale.
        let pop = population(8_000, 4);
        let cfg = DetectConfig { n_experiments: 8, n_boot: 80, ..DetectConfig::default() };
        let rate = detection_rate(&pop, 200, &cfg, &mut rng(5));
        assert!(rate < 0.5, "200 streams should rarely separate CIs, got {rate}");
    }

    #[test]
    fn big_improvements_are_detected_sooner() {
        let pop = population(6_000, 6);
        let mk = |imp: f64| DetectConfig {
            improvement: imp,
            n_experiments: 8,
            n_boot: 100,
            ..DetectConfig::default()
        };
        let mut r1 = rng(7);
        let mut r2 = rng(7);
        let big = stream_years_to_distinguish(&pop, &mk(0.8), 16_000, &mut r1);
        let small = stream_years_to_distinguish(&pop, &mk(0.10), 16_000, &mut r2);
        // An 80% improvement must be detectable, and with no more data than
        // a 10% improvement would need (which may not be detectable at all).
        let big = big.expect("an 80% improvement must be detectable");
        if let Some(small) = small {
            assert!(big <= small, "big {big} vs small {small}");
        }
    }

    #[test]
    fn power_curve_snapshots_each_cut_and_narrows() {
        let pop = population(60_000, 20);
        let mut curve = PowerCurve::new(vec![10.0, 100.0, 1000.0], 0.15, 0.95, 200);
        let mut r = rng(21);
        for (i, &(stall, watch)) in pop.iter().enumerate() {
            curve.push_stream(i % 2 == 1, stall, watch, &mut r);
        }
        let points = curve.finish();
        assert!(points.len() >= 3, "population too small for the cuts: {}", points.len());
        for w in points.windows(2) {
            assert!(w[0].hours_per_arm < w[1].hours_per_arm);
            assert!(w[0].streams_per_arm < w[1].streams_per_arm);
        }
        let first = points.first().unwrap().ci_a.relative_half_width();
        let last = points.last().unwrap().ci_a.relative_half_width();
        assert!(last < first, "CI must narrow along the curve: {first} → {last}");
    }

    #[test]
    fn power_curve_small_cuts_overlap() {
        // A 15% difference is invisible at tens of stream-hours — the §3.4
        // phenomenon, now as a streaming assertion.
        let pop = population(20_000, 22);
        let mut curve = PowerCurve::new(vec![20.0], 0.15, 0.95, 200);
        let mut r = rng(23);
        for (i, &(stall, watch)) in pop.iter().enumerate() {
            if curve.points().len() == 1 {
                break;
            }
            curve.push_stream(i % 2 == 1, stall, watch, &mut r);
        }
        let points = curve.finish();
        assert!(!points[0].separated(), "20 stream-hours must not separate a 15% delta");
    }

    #[test]
    fn returns_none_when_undetectable() {
        // With a cap too small to ever separate a 1% difference.
        let pop = population(5_000, 8);
        let cfg = DetectConfig {
            improvement: 0.01,
            n_experiments: 6,
            n_boot: 80,
            ..DetectConfig::default()
        };
        assert!(stream_years_to_distinguish(&pop, &cfg, 1000, &mut rng(9)).is_none());
    }
}
