//! Train Fugu's Transmission Time Predictor *in situ* (§4.3) and show why
//! it beats the harmonic-mean heuristic.
//!
//! The example (1) collects telemetry by streaming to simulated users in the
//! deployment world, (2) trains the TTP with supervised learning on the
//! 14-day window, and (3) compares its transmission-time predictions against
//! the harmonic-mean throughput predictor on held-out streams.
//!
//! ```sh
//! cargo run --release --example train_fugu_in_situ
//! ```

use puffer_repro::abr::predictor::{HarmonicMean, ThroughputPredictor};
use puffer_repro::abr::ChunkRecord;
use puffer_repro::fugu::{bins, train, TrainConfig, Ttp, TtpConfig};
use puffer_repro::platform::experiment::collect_training_data;
use puffer_repro::platform::{ExperimentConfig, SchemeSpec};
use rand::SeedableRng;

fn main() {
    // 1. Collect telemetry (two simulated days of BBA streaming).
    println!("collecting telemetry from the deployment world ...");
    let data_cfg = ExperimentConfig {
        seed: 11,
        sessions_per_day: 80,
        days: 2,
        retrain: None,
        ..ExperimentConfig::default()
    };
    let train_data = collect_training_data(&SchemeSpec::Bba, &data_cfg);
    println!(
        "  {} streams, {} chunk observations",
        train_data.n_streams(),
        train_data.n_observations()
    );

    // 2. Train the TTP.
    println!("training the TTP (2x64 hidden, 21 output bins, 5 horizons) ...");
    let mut ttp = Ttp::new(TtpConfig::default(), 1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let report = train(
        &mut ttp,
        &train_data,
        1,
        &TrainConfig { epochs: 3, max_samples_per_step: 60_000, ..TrainConfig::default() },
        &mut rng,
    )
    .expect("window has data");
    println!(
        "  {} samples/step, final cross-entropy {:.3} nats (uniform would be {:.3})",
        report.samples_per_step[0],
        report.mean_ce(),
        (bins::N_BINS as f32).ln()
    );

    // 3. Held-out comparison: TTP's expected transmission time vs the
    //    harmonic-mean estimate (size / HM throughput), per §4.6's
    //    "Transmission-time prediction" ablation.
    println!("evaluating on held-out streams ...");
    let eval_cfg =
        ExperimentConfig { seed: 99, sessions_per_day: 30, days: 1, retrain: None, ..data_cfg };
    let eval_data = collect_training_data(&SchemeSpec::Bba, &eval_cfg);

    let mut n = 0usize;
    let mut ttp_abs_err = 0.0f64;
    let mut hm_abs_err = 0.0f64;
    let mut ttp_bin_hits = 0usize;
    let mut hm_bin_hits = 0usize;
    for samples in [eval_data] {
        // Walk every stream and replay the prediction problem.
        for step0 in samples.build_samples(&ttp, 0, 0, u32::MAX, f64::INFINITY) {
            // Reconstruct the pieces: the feature layout ends with the
            // proposed size; the history throughputs occupy the front.
            let feat = &step0.features;
            let hist: Vec<ChunkRecord> = (0..8)
                .filter(|&i| feat[i] > 0.0)
                .map(|i| ChunkRecord {
                    size: f64::from(feat[i]),
                    transmission_time: f64::from(feat[8 + i]),
                })
                .collect();
            let size = f64::from(*feat.last().unwrap());
            let truth_bin = step0.target;
            let truth_time = bins::bin_midpoint(truth_bin);

            let probs = ttp.predict_probs(0, feat);
            let expected: f64 =
                probs.iter().enumerate().map(|(b, &p)| f64::from(p) * bins::bin_midpoint(b)).sum();
            ttp_abs_err += (expected - truth_time).abs();
            if bins::bin_index(expected) == truth_bin {
                ttp_bin_hits += 1;
            }

            let hm_time = match HarmonicMean.predict(&hist) {
                Some(tput) => size / tput,
                None => 1.0,
            };
            hm_abs_err += (hm_time.min(30.0) - truth_time).abs();
            if bins::bin_index(hm_time.min(30.0)) == truth_bin {
                hm_bin_hits += 1;
            }
            n += 1;
        }
    }
    println!("  {} held-out predictions", n);
    println!(
        "  mean |error|:   TTP {:.3} s  vs  harmonic mean {:.3} s",
        ttp_abs_err / n as f64,
        hm_abs_err / n as f64
    );
    println!(
        "  bin accuracy:   TTP {:.1}%  vs  harmonic mean {:.1}%",
        100.0 * ttp_bin_hits as f64 / n as f64,
        100.0 * hm_bin_hits as f64 / n as f64
    );

    // 4. Save a deployment checkpoint.
    let path = std::env::temp_dir().join("fugu_ttp_example.txt");
    puffer_repro::fugu::checkpoint::save_to_file(&ttp, &path).unwrap();
    println!("checkpoint written to {}", path.display());
}
