//! A miniature randomized controlled trial: BBA vs MPC-HM vs RobustMPC-HM.
//!
//! Demonstrates the platform's experiment machinery — blinded randomization,
//! CONSORT accounting, bootstrap confidence intervals — at a size that runs
//! in seconds.  (The full five-arm experiment with trained models lives in
//! `cargo run -p puffer-bench --bin fig1_primary`.)
//!
//! ```sh
//! cargo run --release --example mini_rct
//! ```

use puffer_repro::platform::experiment::run_rct;
use puffer_repro::platform::{ExperimentConfig, SchemeSpec};
use puffer_repro::stats::{bootstrap_ratio_ci, SchemeSummary};
use rand::SeedableRng;

fn main() {
    let cfg = ExperimentConfig {
        seed: 3,
        sessions_per_day: 80,
        days: 2,
        retrain: None,
        paired: true,
        ..ExperimentConfig::default()
    };
    println!(
        "running a paired trial: {} sessions/day x {} days x 3 arms ...\n",
        cfg.sessions_per_day, cfg.days
    );
    let result = run_rct(vec![SchemeSpec::Bba, SchemeSpec::MpcHm, SchemeSpec::RobustMpcHm], &cfg);

    println!(
        "{:<14} {:>10} {:>24} {:>12} {:>12}",
        "scheme", "streams", "stall % [95% CI]", "SSIM dB", "bitrate Mb/s"
    );
    for arm in &result.arms {
        let agg = SchemeSummary::from_streams(&arm.streams);
        let pairs: Vec<(f64, f64)> =
            arm.streams.iter().map(|s| (s.stall_time, s.watch_time)).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let ci = bootstrap_ratio_ci(&pairs, 500, 0.95, &mut rng);
        println!(
            "{:<14} {:>10} {:>7.3}% [{:.3},{:.3}] {:>12.2} {:>12.2}",
            arm.name,
            arm.streams.len(),
            100.0 * ci.point,
            100.0 * ci.lo,
            100.0 * ci.hi,
            agg.mean_ssim_db,
            agg.mean_bitrate / 1e6,
        );
    }

    println!("\nCONSORT accounting:");
    for arm in &result.arms {
        let c = &arm.consort;
        println!(
            "  {}: {} sessions, {} streams ({} never began, {} under 4 s, {} considered)",
            arm.name, c.sessions, c.streams, c.never_began, c.short_watch, c.considered
        );
    }
    println!(
        "\ncollected {} chunk observations of telemetry for TTP training",
        result.dataset.n_observations()
    );
}
