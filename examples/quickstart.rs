//! Quickstart: stream five minutes of video with Fugu over a sampled
//! wild-Internet path and print what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use puffer_repro::abr::Abr as _;
use puffer_repro::fugu::{Fugu, Ttp, TtpConfig};
use puffer_repro::media::VideoSource;
use puffer_repro::net::{CongestionControl, Connection};
use puffer_repro::platform::user::StreamIntent;
use puffer_repro::platform::{run_stream, StreamClock, StreamConfig, UserModel};
use puffer_repro::trace::{bytes_per_sec_to_mbps, TraceBank};
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    // 1. Sample a network path from the deployment-world mixture.
    let bank = TraceBank::puffer();
    let (path, trace) = bank.sample_session(400.0, &mut rng);
    println!(
        "path: {} ({:.1} Mbit/s nominal, {:.0} ms RTT)",
        path.class.name(),
        bytes_per_sec_to_mbps(path.base_rate),
        path.min_rtt * 1000.0
    );

    // 2. Open a TCP connection over it (BBR, like the primary experiment).
    let queue = path.buffer_seconds * path.base_rate;
    let mut conn = Connection::new(trace, path.min_rtt, queue, CongestionControl::Bbr, 0.0);

    // 3. Build Fugu.  An untrained TTP still plans sensibly (its
    //    distributions are just vague); train one with the
    //    `train_fugu_in_situ` example or the bench pipeline for real use.
    let mut fugu = Fugu::new(Ttp::new(TtpConfig::default(), 42));
    println!(
        "scheme: {} ({} networks, {} features each)",
        fugu.name(),
        fugu.ttp().horizon(),
        fugu.ttp().config().n_features()
    );

    // 4. Stream five minutes of live TV to a well-behaved viewer.
    let mut source = VideoSource::puffer_default();
    let user = UserModel { zap_prob: 0.0, ..UserModel::default() };
    let out = run_stream(
        &mut conn,
        &mut source,
        &mut fugu,
        &user,
        StreamClock::starting(StreamIntent::Watch(300.0)),
        &StreamConfig::default(),
        &mut rng,
    );

    // 5. Report.
    let s = out.summary.expect("stream should play");
    println!("\nchunks sent:        {}", s.chunks);
    println!("startup delay:      {:.2} s", s.startup_delay);
    println!("watch time:         {:.1} s", s.watch_time);
    println!("time stalled:       {:.2} s ({:.3}%)", s.stall_time, 100.0 * s.stall_ratio());
    println!("mean SSIM:          {:.2} dB", s.mean_ssim_db);
    println!("SSIM variation:     {:.2} dB per chunk", s.ssim_variation_db);
    println!("mean video bitrate: {:.2} Mbit/s", s.mean_bitrate() / 1e6);

    println!("\nfirst ten decisions (rung, size, transmission time):");
    for c in out.chunk_log.iter().take(10) {
        println!(
            "  rung {:>2}  {:>7.0} kB  {:>6.0} ms{}",
            c.rung,
            c.size / 1000.0,
            c.transmission_time * 1000.0,
            if c.stall > 0.0 { format!("  STALL {:.2}s", c.stall) } else { String::new() }
        );
    }
}
