//! Export synthetic throughput traces in the mahimahi format (§5.2).
//!
//! Generates one wild-Internet trace and one FCC-like emulation trace,
//! writes them as mahimahi packet-delivery-opportunity files, re-imports
//! them, and verifies the round trip — the same files drive the paper's
//! emulation experiments via `mm-link`.
//!
//! ```sh
//! cargo run --release --example export_mahimahi
//! ```

use puffer_repro::trace::{
    bytes_per_sec_to_mbps, mahimahi, FccLikeProcess, PufferLikeProcess, RateProcess, MBPS,
};
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(12);
    let dir = std::env::temp_dir();

    for (name, trace) in [
        (
            "puffer_like.trace",
            PufferLikeProcess::new(4.0 * MBPS, 0.5).sample_trace(120.0, &mut rng),
        ),
        ("fcc_like.trace", FccLikeProcess::new(3.0 * MBPS).sample_trace(120.0, &mut rng)),
    ] {
        let opportunities = mahimahi::from_rate_trace(&trace);
        let text = mahimahi::format(&opportunities);
        let path = dir.join(name);
        std::fs::write(&path, &text).unwrap();

        // Round trip: parse the file back and compare mean rates.
        let parsed = mahimahi::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let back = mahimahi::to_rate_trace(&parsed, 100).unwrap();
        println!(
            "{:<20} {:>7} packets, {:>6.0} s loop, mean {:.2} Mbit/s (reimported {:.2}) -> {}",
            name,
            opportunities.len(),
            trace.loop_duration(),
            bytes_per_sec_to_mbps(trace.mean_rate()),
            bytes_per_sec_to_mbps(back.mean_rate()),
            path.display()
        );
    }
    println!("\nreplay with: mm-link <trace> <trace> -- your_client");
}
