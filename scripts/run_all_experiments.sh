#!/usr/bin/env bash
# Regenerate every table and figure of the paper, teeing output to results/.
# Usage: scripts/run_all_experiments.sh [seed] [scale]
set -euo pipefail
SEED="${1:-1}"
SCALE="${2:-1}"
OUT="results/seed${SEED}_scale${SCALE}"
mkdir -p "$OUT/figures"
export PUFFER_FIGURE_DIR="$OUT/figures"

# Ordered so the primary results land first; later entries are heavier
# secondary experiments.
BINS=(
  fig1_primary
  fig4_ssim_bitrate
  fig8_main
  fig9_coldstart
  fig10_duration
  figA1_consort
  fig2_throughput_states
  fig3_vbr
  uncertainty_analysis
  pensieve_report
  fig7_ablation
  fig11_emulation
  predictor_comparison
  cc_experiment
  stale_ttp
  replication
)

cargo build --release -p puffer-bench

for bin in "${BINS[@]}"; do
  echo "=== $bin ==="
  cargo run --release -p puffer-bench --bin "$bin" -- --seed "$SEED" --scale "$SCALE" \
    2>&1 | tee "$OUT/$bin.txt"
done

echo "All outputs in $OUT/; SVG figures in $OUT/figures/"
