#!/usr/bin/env bash
# Regenerate BENCH_hotpath.json, the hot-path perf snapshot compared by
# perf-sensitive PRs (see README "Performance snapshot").
#
# Usage:
#   scripts/bench_hotpath.sh [baseline.json]
#
# Runs the Criterion microbenches with the BENCH_JSON shim enabled, then
# merges the fresh medians with a baseline (default: the "current_ns"
# column of the existing BENCH_hotpath.json, so repeated runs compare
# against the last committed snapshot).
set -euo pipefail
cd "$(dirname "$0")/.."

fresh=$(mktemp)
trap 'rm -f "$fresh"' EXIT

BENCH_JSON="$fresh" cargo bench -p puffer-bench \
  --bench controller --bench ttp_inference --bench ttp_training --bench stream_sim \
  --bench rct_day

python3 - "$fresh" "${1:-}" <<'EOF'
import json, sys

fresh_path, baseline_path = sys.argv[1], sys.argv[2] or None
fresh = {}
with open(fresh_path) as f:
    for line in f:
        line = line.strip()
        if line:
            row = json.loads(line)
            fresh[row["name"]] = row["median_ns"]

baseline = {}
if baseline_path:
    with open(baseline_path) as f:
        for line in f:
            line = line.strip()
            if line:
                row = json.loads(line)
                baseline[row["name"]] = row["median_ns"]
else:
    try:
        with open("BENCH_hotpath.json") as f:
            prev = json.load(f)
        baseline = {k: v["current_ns"] for k, v in prev["benches"].items()}
    except FileNotFoundError:
        pass

out = {
    "generated_by": "scripts/bench_hotpath.sh",
    "units": "nanoseconds, median per iteration",
    "benches": {},
}
for name in sorted(fresh):
    entry = {"current_ns": fresh[name]}
    if name in baseline:
        entry["baseline_ns"] = baseline[name]
        entry["speedup"] = round(baseline[name] / fresh[name], 3)
    out["benches"][name] = entry

with open("BENCH_hotpath.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print("wrote BENCH_hotpath.json")
EOF
