#!/usr/bin/env bash
# Regenerate BENCH_hotpath.json, the hot-path perf snapshot compared by
# perf-sensitive PRs (see README "Performance snapshot").
#
# Usage:
#   scripts/bench_hotpath.sh [baseline.json]
#
# Runs every Criterion microbench with the BENCH_JSON shim enabled, then
# merges the fresh medians into BENCH_hotpath.json:
#
#   * `current_ns`  — this run's median.
#   * `baseline_ns` — pinned reference point.  Taken from the optional
#     baseline argument (a BENCH_JSON-format .jsonl from a reference run,
#     e.g. one recorded on the pre-change tree on the same machine), else
#     carried forward unchanged from the existing snapshot, else seeded
#     from the first recording.  It does NOT drift to last run's current.
#   * `history_ns`  — trailing medians (oldest first, capped), so a slow
#     regression across several regenerations stays visible even though
#     the baseline is pinned.
#   * `min_ns` / `iqr_ns` — this run's dispersion (fastest sample and
#     interquartile range).  When the IQR exceeds 10% of the median the
#     entry is marked `"noisy": true` and a warning is printed: a median
#     from a run that noisy is weather, not climate, and must not be read
#     as a regression or an improvement (`mpc_plan_reference` once drifted
#     to 0.90x on an untouched path and nothing caught it).
set -euo pipefail
cd "$(dirname "$0")/.."

fresh=$(mktemp)
trap 'rm -f "$fresh"' EXIT

# Every [[bench]] target in crates/bench/Cargo.toml must be listed here,
# or its results silently never reach the snapshot (network_sim was
# missing for several PRs and recorded an empty trajectory).
BENCH_JSON="$fresh" cargo bench -p puffer-bench \
  --bench controller --bench ttp_inference --bench ttp_batch --bench ttp_training \
  --bench network_sim --bench stream_sim --bench rct_day --bench archive_io \
  --bench nn_kernels

python3 - "$fresh" "${1:-}" <<'EOF'
import json, sys

HISTORY_CAP = 8

NOISE_FRACTION = 0.10  # IQR above this fraction of the median => flagged

fresh_path, baseline_path = sys.argv[1], sys.argv[2] or None
fresh = {}
with open(fresh_path) as f:
    for line in f:
        line = line.strip()
        if line:
            row = json.loads(line)
            fresh[row["name"]] = row

try:
    with open("BENCH_hotpath.json") as f:
        prev = json.load(f)["benches"]
except FileNotFoundError:
    prev = {}

explicit_baseline = {}
if baseline_path:
    with open(baseline_path) as f:
        for line in f:
            line = line.strip()
            if line:
                row = json.loads(line)
                explicit_baseline[row["name"]] = row["median_ns"]

out = {
    "generated_by": "scripts/bench_hotpath.sh",
    "units": "nanoseconds, median per iteration",
    "benches": {},
}
noisy = []
for name in sorted(fresh):
    row = fresh[name]
    median = row["median_ns"]
    entry = {"current_ns": median}
    old = prev.get(name, {})
    baseline = explicit_baseline.get(name, old.get("baseline_ns", old.get("current_ns")))
    if baseline is not None:
        entry["baseline_ns"] = baseline
        entry["speedup"] = round(baseline / median, 3)
    # Dispersion of this run (older shim output may predate the fields).
    if "min_ns" in row:
        entry["min_ns"] = row["min_ns"]
    if "q1_ns" in row and "q3_ns" in row:
        iqr = round(row["q3_ns"] - row["q1_ns"], 1)
        entry["iqr_ns"] = iqr
        if median > 0 and iqr / median > NOISE_FRACTION:
            entry["noisy"] = True
            noisy.append((name, 100.0 * iqr / median))
    history = old.get("history_ns", [])
    if not history and "current_ns" in old:
        history = [old["current_ns"]]
    entry["history_ns"] = (history + [median])[-HISTORY_CAP:]
    out["benches"][name] = entry

dropped = sorted(set(prev) - set(fresh))
if dropped:
    print("note: dropped stale benches:", ", ".join(dropped))
for name, pct in noisy:
    print(f"WARNING: {name} is noisy (IQR {pct:.1f}% of median, threshold "
          f"{100 * NOISE_FRACTION:.0f}%); treat its median and speedup as unreliable")

with open("BENCH_hotpath.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print("wrote BENCH_hotpath.json")
EOF
