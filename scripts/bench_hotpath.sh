#!/usr/bin/env bash
# Regenerate BENCH_hotpath.json, the hot-path perf snapshot compared by
# perf-sensitive PRs (see README "Performance snapshot").
#
# Usage:
#   scripts/bench_hotpath.sh [baseline.json]
#
# Runs every Criterion microbench with the BENCH_JSON shim enabled, then
# merges the fresh medians into BENCH_hotpath.json:
#
#   * `current_ns`  — this run's median.
#   * `baseline_ns` — pinned reference point.  Taken from the optional
#     baseline argument (a BENCH_JSON-format .jsonl from a reference run,
#     e.g. one recorded on the pre-change tree on the same machine), else
#     carried forward unchanged from the existing snapshot, else seeded
#     from the first recording.  It does NOT drift to last run's current.
#   * `history_ns`  — trailing medians (oldest first, capped), so a slow
#     regression across several regenerations stays visible even though
#     the baseline is pinned.
set -euo pipefail
cd "$(dirname "$0")/.."

fresh=$(mktemp)
trap 'rm -f "$fresh"' EXIT

# Every [[bench]] target in crates/bench/Cargo.toml must be listed here,
# or its results silently never reach the snapshot (network_sim was
# missing for several PRs and recorded an empty trajectory).
BENCH_JSON="$fresh" cargo bench -p puffer-bench \
  --bench controller --bench ttp_inference --bench ttp_batch --bench ttp_training \
  --bench network_sim --bench stream_sim --bench rct_day --bench archive_io

python3 - "$fresh" "${1:-}" <<'EOF'
import json, sys

HISTORY_CAP = 8

fresh_path, baseline_path = sys.argv[1], sys.argv[2] or None
fresh = {}
with open(fresh_path) as f:
    for line in f:
        line = line.strip()
        if line:
            row = json.loads(line)
            fresh[row["name"]] = row["median_ns"]

try:
    with open("BENCH_hotpath.json") as f:
        prev = json.load(f)["benches"]
except FileNotFoundError:
    prev = {}

explicit_baseline = {}
if baseline_path:
    with open(baseline_path) as f:
        for line in f:
            line = line.strip()
            if line:
                row = json.loads(line)
                explicit_baseline[row["name"]] = row["median_ns"]

out = {
    "generated_by": "scripts/bench_hotpath.sh",
    "units": "nanoseconds, median per iteration",
    "benches": {},
}
for name in sorted(fresh):
    entry = {"current_ns": fresh[name]}
    old = prev.get(name, {})
    baseline = explicit_baseline.get(name, old.get("baseline_ns", old.get("current_ns")))
    if baseline is not None:
        entry["baseline_ns"] = baseline
        entry["speedup"] = round(baseline / fresh[name], 3)
    history = old.get("history_ns", [])
    if not history and "current_ns" in old:
        history = [old["current_ns"]]
    entry["history_ns"] = (history + [fresh[name]])[-HISTORY_CAP:]
    out["benches"][name] = entry

dropped = sorted(set(prev) - set(fresh))
if dropped:
    print("note: dropped stale benches:", ", ".join(dropped))

with open("BENCH_hotpath.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print("wrote BENCH_hotpath.json")
EOF
