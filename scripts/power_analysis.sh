#!/usr/bin/env bash
# Run the §3.4 power analysis at paper scale and record its resource
# envelope (wall-clock and peak RSS) externally, since the repo's lint
# forbids wall-clock reads inside the binaries themselves.
#
# Usage:
#   scripts/power_analysis.sh [outdir] [extra puffer power-analysis flags...]
#
# Defaults reproduce the EXPERIMENTS.md §3.4 table: per-arm cuts from 250
# to 500 000 stream-hours (up to 1M total), a 15% true rebuffering-ratio
# difference, and 200 bootstrap replicates.  Writes the table to
# $outdir/table.txt, the phase log to $outdir/log.txt, and
# "wall_clock_s" / "peak_rss_kb" to $outdir/resources.txt.
set -euo pipefail
cd "$(dirname "$0")/.."

outdir="${1:-results/power_analysis}"
shift || true
mkdir -p "$outdir"

cargo build --release --bin puffer

start=$(date +%s)
./target/release/puffer power-analysis --out "$outdir" "$@" \
  > "$outdir/table.txt" 2> "$outdir/log.txt" &
pid=$!

# Track peak RSS via VmHWM; GNU time is not available everywhere.
peak=0
while kill -0 "$pid" 2>/dev/null; do
  cur=$(awk '/^VmHWM/{print $2}' "/proc/$pid/status" 2>/dev/null || true)
  if [ -n "${cur:-}" ] && [ "$cur" -gt "$peak" ]; then peak=$cur; fi
  sleep 0.2
done
wait "$pid"
end=$(date +%s)

{
  echo "wall_clock_s $((end - start))"
  echo "peak_rss_kb $peak"
} > "$outdir/resources.txt"

cat "$outdir/log.txt" "$outdir/table.txt" "$outdir/resources.txt"
